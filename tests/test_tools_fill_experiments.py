"""Tests for the EXPERIMENTS.md placeholder filler."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import fill_experiments  # noqa: E402


def setup(tmp_path, results_present=True):
    template = tmp_path / "template.md"
    target = tmp_path / "EXPERIMENTS.md"
    results = tmp_path / "results"
    results.mkdir()
    target.write_text("intro\n```\n{FIG2}\n```\noutro\n")
    if results_present:
        for filename in fill_experiments.PLACEHOLDERS.values():
            (results / filename).write_text(f"data of {filename}\n")
    return template, target, results


def test_fill_substitutes_and_keeps_template(tmp_path):
    template, target, results = setup(tmp_path)
    missing = fill_experiments.fill(template, target, results)
    assert missing == []
    text = target.read_text()
    assert "data of fig2_cache_size.txt" in text
    assert "{FIG2}" not in text
    # The template snapshot preserves the placeholders for re-fills.
    assert "{FIG2}" in template.read_text()


def test_fill_is_repeatable(tmp_path):
    template, target, results = setup(tmp_path)
    fill_experiments.fill(template, target, results)
    (results / "fig2_cache_size.txt").write_text("NEW DATA\n")
    fill_experiments.fill(template, target, results)
    assert "NEW DATA" in target.read_text()


def test_fill_reports_missing_results(tmp_path):
    template, target, results = setup(tmp_path, results_present=False)
    missing = fill_experiments.fill(template, target, results)
    assert "fig2_cache_size.txt" in missing
    assert "{FIG2}" in target.read_text()  # target untouched


def test_fill_rejects_template_without_placeholders(tmp_path):
    template, target, results = setup(tmp_path)
    target.write_text("no placeholders here\n")
    with pytest.raises(ValueError):
        fill_experiments.fill(template, target, results)
