"""Exporters, summaries, sweep integration and the trace CLI surface."""

import json
import math

import pytest

from repro.core.config import CachingScheme, SimulationConfig
from repro.experiments.parallel import RunSpec, execute_runs
from repro.obs import (
    SAMPLE_COLUMNS,
    Observer,
    aggregate_sweep,
    phase_breakdown,
    format_breakdown,
    load_events,
    run_traced,
    summarize_path,
    trace_slug,
    traced_runner,
    write_jsonl,
)
from repro.obs.summary import find_trace_files
from repro.obs.tracer import Tracer, TraceError
from repro import cli

_SMALL = dict(
    n_clients=8,
    n_data=200,
    access_range=40,
    cache_size=8,
    group_size=4,
    measure_requests=8,
    warmup_min_time=30.0,
    warmup_max_time=60.0,
    ndp_enabled=False,
)


def _config(scheme=CachingScheme.GC, seed=31, **overrides):
    return SimulationConfig(scheme=scheme, seed=seed, **{**_SMALL, **overrides})


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace") / "gc"
    results, paths = run_traced(_config(), out, sample_period=5.0)
    return results, paths


def test_jsonl_round_trip(traced):
    _results, paths = traced
    events = load_events(paths["jsonl"])
    assert events
    rewritten = paths["jsonl"].parent / "rewritten.jsonl"
    write_jsonl(events, rewritten)
    assert rewritten.read_bytes() == paths["jsonl"].read_bytes()


def test_chrome_trace_structure(traced):
    _results, paths = traced
    payload = json.loads(paths["chrome"].read_text(encoding="utf-8"))
    assert payload["displayTimeUnit"] == "ms"
    rows = payload["traceEvents"]
    phases = {row["ph"] for row in rows}
    assert phases == {"M", "X", "i"}
    spans = [row for row in rows if row["ph"] == "X"]
    assert all(row["ts"] >= 0 and row["dur"] >= 0 for row in spans)
    # Host h maps to pid h+1; pid 0 is the system track (NDP / TCG).
    named = {
        row["pid"]: row["args"]["name"]
        for row in rows
        if row["ph"] == "M" and row["name"] == "process_name"
    }
    assert named[0] == "system"
    assert named[1] == "host 0"


def test_series_csv_columns_and_rows(traced):
    _results, paths = traced
    lines = paths["series"].read_text(encoding="utf-8").strip().splitlines()
    assert lines[0].split(",") == list(SAMPLE_COLUMNS)
    assert len(lines) > 2  # at least a couple of samples plus the header
    final = lines[-1].split(",")
    assert not math.isnan(float(final[SAMPLE_COLUMNS.index("tcg_size_mean")]))


def test_phase_breakdown_formatting(traced):
    _results, paths = traced
    from repro.obs import derive_spans

    stats = phase_breakdown(derive_spans(load_events(paths["jsonl"])))
    names = [row.name for row in stats]
    assert "request" in names and "local" in names
    text = format_breakdown(stats, title="phase latency")
    assert text.startswith("phase latency")
    assert "request" in text


def test_summarize_path_accepts_file_and_directory(traced):
    _results, paths = traced
    for target in (paths["jsonl"], paths["jsonl"].parent):
        text = summarize_path(target)
        assert "phase latency breakdown" in text
        assert "request" in text
    with pytest.raises(FileNotFoundError):
        summarize_path(paths["jsonl"].parent / "missing")
    with pytest.raises(FileNotFoundError):
        find_trace_files(paths["jsonl"].parent / "missing")


def test_tracer_error_paths():
    tracer = Tracer()
    with pytest.raises(TraceError):
        tracer.begin("span")  # not bound to an environment
    from repro.sim.kernel import Environment

    tracer.bind(Environment())
    span = tracer.begin("span")
    tracer.end(span)
    with pytest.raises(TraceError):
        tracer.end(span)  # double close
    with pytest.raises(TraceError):
        tracer.end(999)  # never opened


def test_sampler_rejects_bad_period_and_unknown_column():
    from repro.obs import TimeSeriesSampler

    with pytest.raises(ValueError):
        TimeSeriesSampler(0.0)
    with pytest.raises(KeyError) as excinfo:
        TimeSeriesSampler(1.0).series("nope")
    assert "available" in str(excinfo.value)


def test_traced_runner_per_sweep_aggregation(tmp_path):
    """The execute_runs hook writes one bundle per run; the sweep-level
    aggregation folds them into a single breakdown."""
    configs = [_config(seed=31), _config(seed=32, scheme=CachingScheme.CC)]
    specs = [RunSpec(config=c, label=f"run-{i}") for i, c in enumerate(configs)]
    runner = traced_runner(tmp_path, sample_period=10.0)
    results = execute_runs(specs, runner=runner)
    assert len(results) == 2 and all(r is not None for r in results)
    bundles = sorted(tmp_path.rglob("trace.jsonl"))
    assert len(bundles) == 2
    slugs = {trace_slug(c) for c in configs}
    assert {path.parent.name for path in bundles} == slugs
    text = aggregate_sweep(tmp_path)
    assert "2 trace(s)" in text
    assert "request" in text


def test_cli_run_trace_out(tmp_path, capsys):
    out = tmp_path / "bundle"
    code = cli.main(
        [
            "run",
            "--scheme", "GC",
            "--clients", "8",
            "--data", "200",
            "--cache-size", "8",
            "--access-range", "40",
            "--requests", "5",
            "--seed", "31",
            "--no-ndp",
            "--trace-out", str(out),
            "--sample-period", "20",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    for name in ("trace.jsonl", "trace.chrome.json", "series.csv", "manifest.json"):
        assert (out / name).exists(), name
    # The Chrome export is valid JSON (the python -m json.tool check).
    json.loads((out / "trace.chrome.json").read_text(encoding="utf-8"))
    assert "phase latency" in captured.out


def test_cli_trace_summarize(tmp_path, capsys):
    run_traced(_config(), tmp_path / "gc", sample_period=None)
    code = cli.main(["trace", "summarize", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "phase latency breakdown" in captured.out
    assert cli.main(["trace", "summarize", str(tmp_path / "missing")]) == 2


def test_run_traced_without_sampler_skips_series(tmp_path):
    _results, paths = run_traced(_config(), tmp_path / "gc", sample_period=None)
    assert "series" not in paths
    assert paths["jsonl"].exists()


def test_observer_rejects_double_attach():
    observer = Observer(sample_period=1.0)
    from repro.core.simulation import Simulation

    simulation = Simulation(_config(), observer=observer)
    with pytest.raises(RuntimeError):
        observer.sampler.attach(simulation)
