"""Shared pytest configuration: Hypothesis profiles.

The ``ci`` profile (selected with ``HYPOTHESIS_PROFILE=ci``) runs more
examples with a derandomised, reproducible schedule so CI failures replay
locally; the default ``dev`` profile keeps the suite fast.  Tests that
drive full simulations pin their own ``max_examples`` via ``@settings``
and are unaffected by the profile's example budget.
"""

import os

from hypothesis import settings

settings.register_profile("dev", max_examples=50)
settings.register_profile(
    "ci",
    max_examples=200,
    derandomize=True,
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
