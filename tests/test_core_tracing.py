"""Tests for request tracing and latency percentiles."""

import math

import pytest

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Metrics, RequestOutcome, RequestTrace
from repro.core.simulation import Simulation
from repro.net.power import PowerLedger


def recording_metrics(trace=True):
    metrics = Metrics("GC", trace=trace)
    metrics.start_recording(0.0, PowerLedger(2), n_clients=2)
    return metrics


def test_traces_disabled_by_default():
    metrics = recording_metrics(trace=False)
    metrics.record_request(0, RequestOutcome.LOCAL_HIT, 0.0, now=1.0)
    assert metrics.traces == []
    with pytest.raises(RuntimeError):
        metrics.latency_percentiles()
    with pytest.raises(RuntimeError):
        metrics.client_timeline(0)


def test_traces_capture_requests():
    metrics = recording_metrics()
    metrics.record_request(0, RequestOutcome.SERVER, 0.1, now=5.0)
    metrics.record_request(1, RequestOutcome.GLOBAL_HIT, 0.02, from_tcg=True, now=6.0)
    assert metrics.traces == [
        RequestTrace(5.0, 0, RequestOutcome.SERVER, 0.1, False),
        RequestTrace(6.0, 1, RequestOutcome.GLOBAL_HIT, 0.02, True),
    ]


def test_latency_percentiles():
    metrics = recording_metrics()
    for i in range(1, 101):
        metrics.record_request(0, RequestOutcome.SERVER, i / 100.0, now=float(i))
    points = metrics.latency_percentiles((50.0, 90.0))
    assert points[50.0] == pytest.approx(0.505, abs=0.02)
    assert points[90.0] == pytest.approx(0.905, abs=0.02)


def test_latency_percentiles_filtered_by_outcome():
    metrics = recording_metrics()
    metrics.record_request(0, RequestOutcome.LOCAL_HIT, 0.0, now=1.0)
    metrics.record_request(0, RequestOutcome.SERVER, 1.0, now=2.0)
    only_server = metrics.latency_percentiles((50.0,), RequestOutcome.SERVER)
    assert only_server[50.0] == pytest.approx(1.0)
    missing = metrics.latency_percentiles((50.0,), RequestOutcome.FAILURE)
    assert math.isnan(missing[50.0])


def test_client_timeline():
    metrics = recording_metrics()
    metrics.record_request(0, RequestOutcome.SERVER, 0.1, now=1.0)
    metrics.record_request(1, RequestOutcome.SERVER, 0.2, now=2.0)
    metrics.record_request(0, RequestOutcome.LOCAL_HIT, 0.0, now=3.0)
    timeline = metrics.client_timeline(0)
    assert [t.time for t in timeline] == [1.0, 3.0]


def test_results_latency_by_outcome():
    metrics = recording_metrics(trace=False)
    metrics.record_request(0, RequestOutcome.SERVER, 0.2, now=1.0)
    metrics.record_request(0, RequestOutcome.SERVER, 0.4, now=2.0)
    metrics.record_request(0, RequestOutcome.LOCAL_HIT, 0.0, now=3.0)
    results = metrics.results(10.0, PowerLedger(2))
    assert results.latency_by_outcome["SERVER"] == (2, pytest.approx(0.3))
    assert results.latency_by_outcome["LOCAL_HIT"][0] == 1
    assert "FAILURE" not in results.latency_by_outcome


def test_simulation_tracing_end_to_end():
    config = SimulationConfig(
        scheme=CachingScheme.CC,
        n_clients=6,
        n_data=200,
        access_range=40,
        cache_size=8,
        group_size=3,
        measure_requests=5,
        warmup_min_time=30.0,
        warmup_max_time=60.0,
        ndp_enabled=False,
        trace_requests=True,
        seed=9,
    )
    sim = Simulation(config)
    results = sim.run()
    assert len(sim.metrics.traces) == results.requests
    points = sim.metrics.latency_percentiles((50.0, 99.0))
    assert points[50.0] <= points[99.0]
    # Traces are in simulated-time order.
    times = [t.time for t in sim.metrics.traces]
    assert times == sorted(times)
