"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, _config_from_args, build_parser, main
from repro.core.config import CachingScheme


def parse(argv):
    return build_parser().parse_args(argv)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        parse([])


def test_run_defaults():
    args = parse(["run"])
    config = _config_from_args(args)
    assert config.scheme is CachingScheme.GC
    assert config.n_clients == 100  # library default


def test_run_overrides_map_to_config():
    args = parse(
        [
            "run",
            "--scheme",
            "CC",
            "--clients",
            "10",
            "--data",
            "500",
            "--cache-size",
            "12",
            "--access-range",
            "50",
            "--theta",
            "0.9",
            "--group-size",
            "2",
            "--update-rate",
            "1.5",
            "--p-disc",
            "0.1",
            "--requests",
            "5",
            "--seed",
            "3",
            "--no-ndp",
        ]
    )
    config = _config_from_args(args)
    assert config.scheme is CachingScheme.CC
    assert config.n_clients == 10
    assert config.n_data == 500
    assert config.cache_size == 12
    assert config.access_range == 50
    assert config.theta == 0.9
    assert config.group_size == 2
    assert config.data_update_rate == 1.5
    assert config.p_disc == 0.1
    assert config.measure_requests == 5
    assert config.seed == 3
    assert config.ndp_enabled is False


def test_invalid_scheme_rejected():
    with pytest.raises(SystemExit):
        parse(["run", "--scheme", "XX"])


def test_figure_choices_cover_all_paper_figures():
    assert set(FIGURES) == {f"fig{i}" for i in range(2, 9)} | {
        "fig-loss",
        "fig-policy",
        "fig-matrix",
        "fig-workload",
    }
    with pytest.raises(SystemExit):
        parse(["figure", "fig99"])


def test_main_run_executes(capsys):
    code = main(
        [
            "run",
            "--clients",
            "6",
            "--data",
            "200",
            "--cache-size",
            "8",
            "--access-range",
            "40",
            "--requests",
            "3",
            "--group-size",
            "3",
            "--no-ndp",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "access latency" in out
    assert "server request ratio" in out


def test_main_compare_executes(capsys):
    code = main(
        [
            "compare",
            "--clients",
            "6",
            "--data",
            "200",
            "--cache-size",
            "8",
            "--access-range",
            "40",
            "--requests",
            "3",
            "--group-size",
            "3",
            "--no-ndp",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    for scheme in ("LC", "CC", "GC"):
        assert f"--- {scheme} ---" in out


def test_main_figure_executes(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    # Shrink the sweep through the profile hook for a fast smoke test.
    from repro.experiments import runner

    monkeypatch.setitem(runner._PROFILES, "quick", dict(
        runner.QUICK_PROFILE,
        n_clients=6,
        n_data=200,
        access_range=20,
        cache_size=5,
        measure_requests=3,
        warmup_min_time=0.0,
        warmup_max_time=30.0,
    ))
    code = main(["figure", "fig3", "--profile", "quick"])
    out = capsys.readouterr().out
    assert code == 0
    assert "(a) Access Latency" in out
    assert "GC" in out


def test_sweep_parser_accepts_execution_options():
    args = parse(
        [
            "sweep",
            "fig2",
            "--scale",
            "quick",
            "--jobs",
            "4",
            "--cache",
            "/tmp/some-cache",
            "--profile",
            "--csv",
            "/tmp/out.csv",
        ]
    )
    assert args.figure == "fig2"
    assert args.scale == "quick"
    assert args.jobs == 4
    assert args.cache == "/tmp/some-cache"
    assert args.profile is True
    assert args.csv == "/tmp/out.csv"


def test_sweep_parser_defaults_to_serial_uncached():
    args = parse(["sweep", "fig5"])
    assert args.jobs == 1
    assert args.cache is None
    assert args.profile is False


def test_main_sweep_executes_with_cache_and_profile(capsys, monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    from repro.experiments import runner

    monkeypatch.setitem(runner._PROFILES, "quick", dict(
        runner.QUICK_PROFILE,
        n_clients=6,
        n_data=200,
        access_range=20,
        cache_size=5,
        measure_requests=3,
        warmup_min_time=0.0,
        warmup_max_time=30.0,
    ))
    cache_dir = tmp_path / "cache"
    argv = [
        "sweep",
        "fig3",
        "--scale",
        "quick",
        "--cache",
        str(cache_dir),
        "--profile",
        "--csv",
        str(tmp_path / "fig3.csv"),
    ]
    code = main(argv)
    captured = capsys.readouterr()
    assert code == 0
    assert "(a) Access Latency" in captured.out
    assert "per-run profile" in captured.out
    assert "ev/s" in captured.out
    assert "15 misses, 15 stored" in captured.err
    assert (tmp_path / "fig3.csv").read_text().startswith("figure,")

    # A repeat resolves entirely from the cache: zero new simulations.
    from repro.core.simulation import simulations_run

    before = simulations_run()
    code = main(argv)
    captured = capsys.readouterr()
    assert code == 0
    assert simulations_run() == before
    assert "15 hits, 0 misses" in captured.err
