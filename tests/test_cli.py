"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, _config_from_args, build_parser, main
from repro.core.config import CachingScheme


def parse(argv):
    return build_parser().parse_args(argv)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        parse([])


def test_run_defaults():
    args = parse(["run"])
    config = _config_from_args(args)
    assert config.scheme is CachingScheme.GC
    assert config.n_clients == 100  # library default


def test_run_overrides_map_to_config():
    args = parse(
        [
            "run",
            "--scheme",
            "CC",
            "--clients",
            "10",
            "--data",
            "500",
            "--cache-size",
            "12",
            "--access-range",
            "50",
            "--theta",
            "0.9",
            "--group-size",
            "2",
            "--update-rate",
            "1.5",
            "--p-disc",
            "0.1",
            "--requests",
            "5",
            "--seed",
            "3",
            "--no-ndp",
        ]
    )
    config = _config_from_args(args)
    assert config.scheme is CachingScheme.CC
    assert config.n_clients == 10
    assert config.n_data == 500
    assert config.cache_size == 12
    assert config.access_range == 50
    assert config.theta == 0.9
    assert config.group_size == 2
    assert config.data_update_rate == 1.5
    assert config.p_disc == 0.1
    assert config.measure_requests == 5
    assert config.seed == 3
    assert config.ndp_enabled is False


def test_invalid_scheme_rejected():
    with pytest.raises(SystemExit):
        parse(["run", "--scheme", "XX"])


def test_figure_choices_cover_all_paper_figures():
    assert set(FIGURES) == {f"fig{i}" for i in range(2, 9)}
    with pytest.raises(SystemExit):
        parse(["figure", "fig99"])


def test_main_run_executes(capsys):
    code = main(
        [
            "run",
            "--clients",
            "6",
            "--data",
            "200",
            "--cache-size",
            "8",
            "--access-range",
            "40",
            "--requests",
            "3",
            "--group-size",
            "3",
            "--no-ndp",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "access latency" in out
    assert "server request ratio" in out


def test_main_compare_executes(capsys):
    code = main(
        [
            "compare",
            "--clients",
            "6",
            "--data",
            "200",
            "--cache-size",
            "8",
            "--access-range",
            "40",
            "--requests",
            "3",
            "--group-size",
            "3",
            "--no-ndp",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    for scheme in ("LC", "CC", "GC"):
        assert f"--- {scheme} ---" in out


def test_main_figure_executes(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    # Shrink the sweep through the profile hook for a fast smoke test.
    from repro.experiments import runner

    monkeypatch.setitem(runner._PROFILES, "quick", dict(
        runner.QUICK_PROFILE,
        n_clients=6,
        n_data=200,
        access_range=20,
        cache_size=5,
        measure_requests=3,
        warmup_min_time=0.0,
        warmup_max_time=30.0,
    ))
    code = main(["figure", "fig3", "--profile", "quick"])
    out = capsys.readouterr().out
    assert code == 0
    assert "(a) Access Latency" in out
    assert "GC" in out
