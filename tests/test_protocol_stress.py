"""Stress and churn tests of the protocol state machines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CachingScheme
from repro.core.metrics import RequestOutcome
from repro.core.signatures_proto import SignatureAgent
from repro.signatures import SignatureScheme
from tests.test_core_client_protocol import World


def test_simultaneous_searchers_for_the_same_item():
    """Two clients search the same cached item concurrently; both get it."""
    points = [(0.0, 0.0), (30.0, 0.0), (15.0, 25.0)]
    world = World(points, scheme=CachingScheme.CC)
    world.give_item(2, item=7)
    world.env.process(world.clients[0].access_item(7))
    world.env.process(world.clients[1].access_item(7))
    world.env.run(until=30.0)
    assert world.metrics.outcomes[RequestOutcome.GLOBAL_HIT] == 2
    assert 7 in world.clients[0].cache
    assert 7 in world.clients[1].cache


def test_three_hop_search_with_hop_dist_three():
    chain = [(0.0, 0.0), (40.0, 0.0), (80.0, 0.0), (120.0, 0.0)]
    world = World(chain, scheme=CachingScheme.CC, hop_dist=3)
    world.give_item(3, item=9)
    world.access(0, 9)
    assert world.metrics.outcomes[RequestOutcome.GLOBAL_HIT] == 1


def test_many_outstanding_searches_interleave_cleanly():
    world = World([(0.0, 0.0), (30.0, 0.0)], scheme=CachingScheme.CC, cache_size=12)
    for item in range(20, 30):
        world.give_item(1, item=item)

    def burst():
        for item in range(20, 30):
            yield from world.clients[0].access_item(item)

    world.env.process(burst())
    world.env.run(until=60.0)
    assert world.metrics.outcomes[RequestOutcome.GLOBAL_HIT] == 10
    assert not world.clients[0]._searches  # all search state cleaned up


def test_replier_disconnects_between_reply_and_retrieve():
    world = World([(0.0, 0.0), (30.0, 0.0)], scheme=CachingScheme.CC)
    world.give_item(1, item=7)

    original = world.clients[1]._send_reply

    def reply_then_vanish(request, entry):
        yield from original(request, entry)
        world.network.set_connected(1, False)
        world.clients[1].connected = False

    world.clients[1]._send_reply = reply_then_vanish
    world.access(0, 7)
    # The retrieve fails; the requester must still resolve via the server.
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1
    assert 7 in world.clients[0].cache


def test_search_state_cleaned_after_timeout():
    world = World([(0.0, 0.0), (500.0, 0.0)], scheme=CachingScheme.CC)
    world.access(0, 3)  # nobody in range: timeout -> server
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1
    assert not world.clients[0]._searches


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=9)),
        max_size=60,
    ),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_signature_agent_membership_churn_invariants(changes, batch):
    """Under arbitrary membership churn the agent's invariants hold:
    outstanding is a subset of members, and the peer vector's counters are
    consistent with its width."""
    agent = SignatureAgent(
        SignatureScheme(np.random.default_rng(0), 256, 2),
        counter_bits=4,
        recollect_batch=batch,
    )
    for add, peer in changes:
        if add:
            agent.apply_membership_changes({peer}, set())
        else:
            agent.apply_membership_changes(set(), {peer})
        assert agent.outstanding <= agent.members
        peak = int(agent.peer.counters.max())
        expected_width = peak.bit_length() if peak else 0
        assert agent.peer.counter_bits == expected_width
        assert agent.peer.counters.min() >= 0


@given(st.lists(st.integers(min_value=0, max_value=40), max_size=50))
@settings(max_examples=40, deadline=None)
def test_signature_agent_cache_bookkeeping_consistency(items):
    """Insert/evict bookkeeping keeps the own signature equal to a rebuild."""
    scheme = SignatureScheme(np.random.default_rng(1), 512, 2)
    agent = SignatureAgent(scheme, counter_bits=8)
    cache = []
    for item in items:
        if item in cache:
            cache.remove(item)
            agent.record_evict(item, cache)
        else:
            cache.append(item)
            agent.record_insert(item)
    reference = scheme.make_filter()
    reference.add_all(cache)
    assert np.array_equal(agent.own.signature().bits, reference.bits)


def test_piggyback_annihilation_across_many_flips():
    scheme = SignatureScheme(np.random.default_rng(2), 512, 2)
    agent = SignatureAgent(scheme, counter_bits=8)
    for _ in range(5):
        agent.record_insert(7)
        agent.record_evict(7, cache_items=[])
    insertions, evictions = agent.take_update()
    assert insertions == [] and evictions == []
