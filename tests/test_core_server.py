"""Tests for the MSS request handlers."""

import math

import numpy as np
import pytest

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.server import MobileSupportStation
from repro.core.tcg import TCGManager
from repro.data.server_db import ServerDatabase
from repro.sim import Environment


def make_server(scheme=CachingScheme.GC, update_rate=0.0, n=4, n_data=50):
    env = Environment()
    config = SimulationConfig(
        scheme=scheme,
        n_clients=n,
        n_data=n_data,
        access_range=min(20, n_data),
        data_update_rate=update_rate,
    )
    database = ServerDatabase(
        env, np.random.default_rng(0), n_data, update_rate=update_rate
    )
    tcg = None
    if scheme is CachingScheme.GC:
        tcg = TCGManager(n, n_data, 100.0, 0.2, 0.5)
    return env, MobileSupportStation(env, config, database, tcg=tcg)


def test_data_request_returns_copy_with_ttl():
    env, server = make_server()
    reply = server.handle_data_request(0, item=7, location=(1.0, 2.0))
    assert reply.item == 7
    assert reply.version == 0
    assert math.isinf(reply.expiry)  # never updated
    assert reply.retrieve_time == env.now
    assert server.data_requests == 1


def test_data_request_learns_pattern():
    env, server = make_server()
    server.handle_data_request(0, item=7, location=(0.0, 0.0))
    assert server.tcg.access_counts[0, 7] == 1
    assert server.tcg.weighted_distance(0, 1) == math.inf  # 1 not seen yet
    server.handle_data_request(1, item=7, location=(3.0, 4.0))
    assert server.tcg.weighted_distance(0, 1) == pytest.approx(5.0)


def test_lc_cc_server_skips_tcg_work():
    env, server = make_server(scheme=CachingScheme.CC)
    reply = server.handle_data_request(0, item=1, location=(0.0, 0.0))
    assert reply.added == set() and reply.removed == set()
    assert server.tcg is None


def test_membership_changes_piggybacked_once():
    env, server = make_server()
    # Make 0 and 1 tightly coupled; collect every piggybacked announcement.
    announced = set()
    for _ in range(3):
        announced |= server.handle_data_request(0, item=5, location=(0.0, 0.0)).added
        server.handle_data_request(1, item=5, location=(1.0, 0.0))
    assert announced == {1}
    again = server.handle_data_request(0, item=5, location=(0.0, 0.0))
    assert again.added == set()  # already announced


def test_validation_approves_unchanged_copy():
    env, server = make_server(update_rate=0.0)
    first = server.handle_data_request(0, item=3, location=(0.0, 0.0))
    env.run(until=10.0)
    reply = server.handle_validation(
        0, item=3, retrieve_time=first.retrieve_time, location=(0.0, 0.0)
    )
    assert not reply.refreshed
    assert reply.retrieve_time == first.retrieve_time
    assert server.validations == 1


def test_validation_ships_fresh_copy_after_update():
    env, server = make_server()
    first = server.handle_data_request(0, item=3, location=(0.0, 0.0))
    env.run(until=5.0)
    server.database.apply_update(3)
    reply = server.handle_validation(
        0, item=3, retrieve_time=first.retrieve_time, location=(0.0, 0.0)
    )
    assert reply.refreshed
    assert reply.version == 1
    assert reply.retrieve_time == 5.0


def test_validation_assigns_remaining_lifetime_ttl():
    env, server = make_server()
    env.run(until=10.0)
    server.database.apply_update(3)  # u = 10, t_l = 10
    env.run(until=14.0)
    reply = server.handle_data_request(0, item=3, location=(0.0, 0.0))
    assert reply.expiry == pytest.approx(14.0 + 6.0)


def test_explicit_update_feeds_pattern():
    env, server = make_server()
    added, removed = server.handle_explicit_update(
        0, location=(0.0, 0.0), peer_accessed_items=[1, 2, 2]
    )
    assert server.tcg.access_counts[0, 2] == 2
    assert server.explicit_updates == 1
    assert added == set()


def test_membership_sync_returns_full_view():
    env, server = make_server()
    for _ in range(3):
        server.handle_data_request(0, item=5, location=(0.0, 0.0))
        server.handle_data_request(1, item=5, location=(1.0, 0.0))
    view = server.handle_membership_sync(0)
    assert view == {1}
    # Sync marks everything announced: nothing further piggybacked.
    reply = server.handle_data_request(0, item=5, location=(0.0, 0.0))
    assert reply.added == set()


def test_membership_sync_without_tcg():
    env, server = make_server(scheme=CachingScheme.CC)
    assert server.handle_membership_sync(0) == set()
