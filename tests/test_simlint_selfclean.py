"""simlint applied to the shipped tree: clean modulo the committed baseline."""

import io
import shutil
from pathlib import Path

from repro.analysis.runner import run_lint
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "simlint-baseline.json"


def test_shipped_tree_is_clean_modulo_baseline():
    stream = io.StringIO()
    code = run_lint([SRC], baseline_path=BASELINE, stream=stream)
    assert code == 0, f"simlint found new violations:\n{stream.getvalue()}"


def test_committed_baseline_has_no_stale_entries():
    stream = io.StringIO()
    run_lint([SRC], baseline_path=BASELINE, stream=stream)
    assert "stale" not in stream.getvalue()


def test_injected_violation_fails_with_rule_and_line(tmp_path):
    # Copy a real source file and inject a bare generator construction.
    victim = tmp_path / "models_copy.py"
    shutil.copyfile(SRC / "delivery" / "models.py", victim)
    lines = victim.read_text(encoding="utf-8").splitlines()
    lines.append("INJECTED = __import__('numpy').random.default_rng(1)")
    # Resolves through an import alias too, like real offending code would.
    lines.insert(0, "import numpy as np")
    lines.append("ALIASED = np.random.default_rng(2)")
    victim.write_text("\n".join(lines) + "\n", encoding="utf-8")
    injected_line = len(lines)

    stream = io.StringIO()
    code = run_lint([victim], baseline_path=BASELINE, stream=stream)
    output = stream.getvalue()
    assert code == 1
    assert "no-direct-rng" in output
    assert f":{injected_line}:" in output


def test_cli_lint_subcommand_paths(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT = time.time()\n")
    assert main(["lint", str(bad), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "no-wall-clock" in out

    assert main(["lint", str(bad), "--no-baseline", "--format", "json"]) == 1
    assert '"no-wall-clock"' in capsys.readouterr().out


def test_cli_lint_rules_catalogue(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "no-direct-rng" in out
    assert "meta rules" in out


def test_cli_lint_update_baseline_conflict(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("X = 1\n")
    assert main(["lint", str(bad), "--no-baseline", "--update-baseline"]) == 2
