"""Trace replay: schema contracts, demux, looping and constant memory.

The malformed-trace tests pin the exact error messages (file, line,
cause) — a replay that fails three hours into a batch job must say
precisely which line of which file broke the schema.  The streaming test
pushes a million-request trace through the reader and bounds the
``tracemalloc`` peak delta, pinning the lazy per-host demux contract.
"""

import json
import tracemalloc

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import run_simulation
from repro.check.golden import results_to_dict
from repro.sim.random import RandomStreams
from repro.workloads.factory import build_workload
from repro.workloads.trace import TRACE_HEADER


def config_for(path, n_clients=4, **params):
    return SimulationConfig(
        n_clients=n_clients,
        n_data=50,
        access_range=20,
        cache_size=6,
        group_size=2,
        measure_requests=3,
        warmup_min_time=5.0,
        warmup_max_time=10.0,
        max_sim_time=200.0,
        ndp_enabled=False,
        seed=5,
        workload="trace-replay",
        workload_params={"path": str(path), **params},
    )


def engine_for(config):
    streams = RandomStreams(config.seed)
    group_of = [index // config.group_size for index in range(config.n_clients)]
    return build_workload(config, streams, group_of)


def write_csv(path, rows):
    lines = [TRACE_HEADER] + [f"{t},{host},{item}" for t, host, item in rows]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


# -- happy paths -----------------------------------------------------------------


def test_csv_replay_demuxes_per_host(tmp_path):
    rows = [(0.5, 0, 7), (1.0, 1, 8), (1.5, 0, 9), (2.0, 5, 10)]
    trace = write_csv(tmp_path / "t.csv", rows)
    engine = engine_for(config_for(trace, loop=False))
    host0 = engine.bind(0, None)
    host1 = engine.bind(1, None)
    # Host 0 sees its own records in order; trace host 5 -> 5 % 4 = host 1.
    assert host0.next_delay(0.0) == pytest.approx(0.5)
    assert host0.next_item(0.5) == 7
    assert host0.next_delay(0.5) == pytest.approx(1.0)
    assert host0.next_item(1.5) == 9
    assert host1.next_delay(0.0) == pytest.approx(1.0)
    assert host1.next_item(1.0) == 8
    assert host1.next_delay(1.0) == pytest.approx(1.0)
    assert host1.next_item(2.0) == 10


def test_jsonl_replay_matches_csv(tmp_path):
    # A looping trace must feature every host: a host with no records
    # would pull the loop forever looking for one (tripping the demux
    # buffer cap, by design).
    rows = [(0.5, 0, 7), (1.0, 1, 8), (1.5, 2, 9), (2.0, 3, 10)]
    csv = write_csv(tmp_path / "t.csv", rows)
    jsonl = tmp_path / "t.jsonl"
    jsonl.write_text(
        "\n".join(
            json.dumps({"t": t, "host": h, "item": i}) for t, h, i in rows
        )
        + "\n",
        encoding="utf-8",
    )
    a = results_to_dict(run_simulation(config_for(csv)))
    b = results_to_dict(run_simulation(config_for(jsonl)))
    assert a == b


def test_loop_restarts_with_shifted_timestamps(tmp_path):
    trace = write_csv(tmp_path / "t.csv", [(1.0, 0, 3), (2.0, 0, 4)])
    engine = engine_for(config_for(trace, n_clients=1, loop=True))
    host = engine.bind(0, None)
    times = []
    now = 0.0
    for _ in range(6):
        now += host.next_delay(now)
        times.append(now)
        host.next_item(now)
    # Two passes of [1, 2] shifted by the pass length each lap.
    assert times == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])


def test_exhausted_nonloop_stream_idles_out(tmp_path):
    trace = write_csv(tmp_path / "t.csv", [(1.0, 0, 3)])
    engine = engine_for(config_for(trace, n_clients=1, loop=False))
    host = engine.bind(0, None)
    host.next_delay(0.0)
    host.next_item(1.0)
    assert host.next_delay(1.0) > 1e12  # idles far past any max_sim_time


def test_time_scale_compresses_the_trace(tmp_path):
    trace = write_csv(tmp_path / "t.csv", [(10.0, 0, 3), (20.0, 0, 4)])
    engine = engine_for(
        config_for(trace, n_clients=1, loop=False, time_scale=0.1)
    )
    host = engine.bind(0, None)
    assert host.next_delay(0.0) == pytest.approx(1.0)


def test_full_simulation_replays_a_trace_deterministically(tmp_path):
    rng = RandomStreams(3).stream("test-trace-gen")
    now, rows = 0.0, []
    for _ in range(600):
        now += float(rng.exponential(0.5))
        rows.append((round(now, 6), int(rng.integers(0, 4)), int(rng.integers(0, 50))))
    trace = write_csv(tmp_path / "t.csv", rows)
    config = config_for(trace)
    first = results_to_dict(run_simulation(config))
    second = results_to_dict(run_simulation(config))
    assert first == second
    assert first["requests"] > 0


# -- malformed-trace error contracts ---------------------------------------------


def test_missing_file_is_reported(tmp_path):
    with pytest.raises(ValueError, match="trace file not found"):
        engine_for(config_for(tmp_path / "absent.csv"))


def test_bad_header_is_pinned(tmp_path):
    trace = tmp_path / "t.csv"
    trace.write_text("time,who,what\n1.0,0,1\n", encoding="utf-8")
    with pytest.raises(
        ValueError, match="header must be 't,host,item', got 'time,who,what'"
    ):
        engine_for(config_for(trace))


def test_truncated_line_is_pinned(tmp_path):
    trace = tmp_path / "t.csv"
    trace.write_text(f"{TRACE_HEADER}\n1.0,0\n", encoding="utf-8")
    engine = engine_for(config_for(trace))
    with pytest.raises(
        ValueError,
        match=r"line 2: expected 3 fields \(t,host,item\), got 2",
    ) as excinfo:
        engine.bind(0, None).next_delay(0.0)
    assert str(trace) in str(excinfo.value)


def test_non_numeric_fields_are_pinned(tmp_path):
    trace = tmp_path / "t.csv"
    trace.write_text(f"{TRACE_HEADER}\n1.0,zero,1\n", encoding="utf-8")
    engine = engine_for(config_for(trace))
    with pytest.raises(
        ValueError, match="line 2: t, host and item must be numeric"
    ):
        engine.bind(0, None).next_delay(0.0)


def test_unknown_item_id_is_pinned(tmp_path):
    trace = write_csv(tmp_path / "t.csv", [(1.0, 0, 3), (2.0, 0, 50)])
    engine = engine_for(config_for(trace))  # n_data = 50: ids 0..49
    host = engine.bind(0, None)
    host.next_delay(0.0)
    host.next_item(1.0)
    with pytest.raises(
        ValueError,
        match=r"line 3: unknown item id 50 \(database has 50 items\)",
    ):
        host.next_delay(1.0)


def test_non_monotone_timestamp_is_pinned(tmp_path):
    trace = write_csv(tmp_path / "t.csv", [(5.0, 0, 3), (4.0, 0, 4)])
    engine = engine_for(config_for(trace))
    host = engine.bind(0, None)
    host.next_delay(0.0)
    host.next_item(5.0)
    with pytest.raises(
        ValueError, match="line 3: non-monotone timestamp 4.0 < 5.0"
    ):
        host.next_delay(5.0)


def test_negative_timestamp_is_pinned(tmp_path):
    trace = write_csv(tmp_path / "t.csv", [(-1.0, 0, 3)])
    engine = engine_for(config_for(trace))
    with pytest.raises(ValueError, match="line 2: negative timestamp -1.0"):
        engine.bind(0, None).next_delay(0.0)


def test_invalid_json_line_is_pinned(tmp_path):
    trace = tmp_path / "t.jsonl"
    trace.write_text('{"t": 1.0, "host": 0, "item": 3}\n{broken\n', encoding="utf-8")
    engine = engine_for(config_for(trace))
    host = engine.bind(0, None)
    host.next_delay(0.0)
    host.next_item(1.0)
    with pytest.raises(ValueError, match="line 2: invalid JSON"):
        host.next_delay(1.0)


def test_jsonl_missing_keys_are_pinned(tmp_path):
    trace = tmp_path / "t.jsonl"
    trace.write_text('{"t": 1.0, "host": 0}\n', encoding="utf-8")
    engine = engine_for(config_for(trace))
    with pytest.raises(
        ValueError, match="line 1: expected an object with keys t, host, item"
    ):
        engine.bind(0, None).next_delay(0.0)


def test_empty_looping_trace_is_rejected(tmp_path):
    trace = tmp_path / "t.csv"
    trace.write_text(f"{TRACE_HEADER}\n", encoding="utf-8")
    engine = engine_for(config_for(trace, loop=True))
    with pytest.raises(ValueError, match="no records to replay"):
        engine.bind(0, None).next_delay(0.0)


def test_demux_buffer_overflow_names_the_knob(tmp_path):
    # Every record belongs to trace host 1 while host 0 keeps pulling, so
    # host 1's buffer must absorb the whole backlog and trip the cap.
    rows = [(float(i), 1, 0) for i in range(1, 20)]
    trace = write_csv(tmp_path / "t.csv", rows)
    engine = engine_for(config_for(trace, loop=False, max_buffer=8))
    with pytest.raises(ValueError, match=r"raise workload_params\['max_buffer'\]"):
        engine.bind(0, None).next_delay(0.0)


def test_bad_params_are_rejected(tmp_path):
    trace = write_csv(tmp_path / "t.csv", [(1.0, 0, 3)])
    with pytest.raises(ValueError, match="'time_scale' must be positive"):
        engine_for(config_for(trace, time_scale=0.0))
    with pytest.raises(ValueError, match="'max_buffer' must be >= 1"):
        engine_for(config_for(trace, max_buffer=0))


# -- constant-memory streaming ---------------------------------------------------


def test_million_request_replay_is_constant_memory(tmp_path):
    n_requests = 1_000_000
    n_hosts = 4
    trace = tmp_path / "big.csv"
    with trace.open("w", encoding="utf-8") as handle:
        handle.write(f"{TRACE_HEADER}\n")
        for i in range(n_requests):
            # Deterministic arithmetic schedule: hosts interleave evenly,
            # items cycle the database — no RNG needed for a size test.
            handle.write(f"{i * 0.001:.3f},{i % n_hosts},{i % 50}\n")

    engine = engine_for(config_for(trace, n_clients=n_hosts, loop=False))
    hosts = [engine.bind(index, None) for index in range(n_hosts)]
    clocks = [0.0] * n_hosts

    def drain(count):
        for step in range(count):
            index = step % n_hosts
            clocks[index] += hosts[index].next_delay(clocks[index])
            hosts[index].next_item(clocks[index])

    tracemalloc.start()
    try:
        drain(40_000)  # warm: buffers, caches, parser state
        tracemalloc.reset_peak()
        baseline = tracemalloc.get_traced_memory()[0]
        drain(n_requests - 40_000)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert engine.reader.records_read == n_requests
    # 960k further requests must not grow the resident trace state: the
    # reader holds one line and a few per-host records at a time.
    assert peak - baseline < 256 * 1024
