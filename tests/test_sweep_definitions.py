"""The sweep definitions behind each figure: x-axes, profiles, configs.

``run_sweep`` is stubbed out, so these tests exercise the experiment
*definitions* (which parameter, which values, which warm-up scaling)
without running any simulation.
"""

import pytest

from repro.experiments import sweeps


@pytest.fixture()
def recorded(monkeypatch):
    calls = []

    def fake_run_sweep(figure, parameter, values, config_for, **kwargs):
        calls.append(
            {
                "figure": figure,
                "parameter": parameter,
                "values": list(values),
                "configs": [config_for(v) for v in values],
            }
        )
        return calls[-1]

    monkeypatch.setattr(sweeps, "run_sweep", fake_run_sweep)
    return calls


def set_profile(monkeypatch, name):
    monkeypatch.setenv("REPRO_PROFILE", name)
    monkeypatch.delenv("REPRO_FULL", raising=False)


def test_fig2_paper_axis_at_bench(recorded, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_cache_size()
    call = recorded[-1]
    assert call["figure"] == "Fig2"
    assert call["values"] == [50, 100, 150, 200, 250]
    assert [c.cache_size for c in call["configs"]] == call["values"]


def test_fig2_scaled_axis_at_quick(recorded, monkeypatch):
    set_profile(monkeypatch, "quick")
    sweeps.sweep_cache_size()
    values = recorded[-1]["values"]
    assert max(values) < 200  # never swallows the quick access range


def test_fig3_theta_axis(recorded, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_skewness()
    call = recorded[-1]
    assert call["values"] == [0.0, 0.25, 0.5, 0.75, 1.0]
    assert [c.theta for c in call["configs"]] == call["values"]


def test_fig4_warmup_scales_with_range(recorded, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_access_range()
    call = recorded[-1]
    assert call["values"][-1] == 10_000
    warmups = [c.warmup_min_time for c in call["configs"]]
    assert warmups == sorted(warmups)
    assert warmups[-1] == 800.0  # capped
    assert warmups[0] >= 300.0


def test_fig5_group_axis_starts_at_one(recorded, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_group_size()
    call = recorded[-1]
    assert call["values"][0] == 1
    assert [c.group_size for c in call["configs"]] == call["values"]


def test_fig6_update_rates_include_zero(recorded, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_update_rate()
    call = recorded[-1]
    assert call["values"][0] == 0.0
    assert [c.data_update_rate for c in call["configs"]] == call["values"]


def test_fig7_population_axis_per_profile(recorded, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_n_clients()
    assert recorded[-1]["values"] == [30, 60, 120, 180, 240]
    set_profile(monkeypatch, "full")
    sweeps.sweep_n_clients()
    assert recorded[-1]["values"] == [50, 100, 200, 300, 400]


def test_fig7_warmup_scales_with_population(recorded, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_n_clients()
    configs = recorded[-1]["configs"]
    assert configs[0].warmup_min_time == 300.0  # small N keeps the default
    assert configs[-1].warmup_min_time == pytest.approx(2.5 * 240)


def test_fig8_disconnection_axis(recorded, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_disconnection()
    call = recorded[-1]
    assert call["values"] == [0.0, 0.05, 0.1, 0.2, 0.3]
    assert [c.p_disc for c in call["configs"]] == call["values"]


def test_explicit_values_override_defaults(recorded, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_cache_size(values=[10, 20])
    assert recorded[-1]["values"] == [10, 20]


@pytest.fixture()
def recorded_specs(monkeypatch):
    """Capture execute_runs specs for sweeps that bypass run_sweep."""
    calls = []

    def fake_execute_runs(specs, **kwargs):
        calls.append(list(specs))
        return [None] * len(specs)

    monkeypatch.setattr(sweeps, "execute_runs", fake_execute_runs)
    return calls


def test_fig_policy_matrix_shape(recorded_specs, monkeypatch):
    set_profile(monkeypatch, "bench")
    table = sweeps.sweep_peer_policy()
    specs = recorded_specs[-1]
    assert table.figure == "FigPolicy"
    assert table.parameter == "p2p_loss"
    assert table.values == [0.0, 0.1, 0.2, 0.3]
    assert sorted(table.rows) == sorted(
        ["arrival", "least-pending", "latency-aware", "power-aware",
         "epsilon-greedy"]
    )
    assert len(specs) == len(table.values) * len(table.rows)


def test_fig_policy_arrival_row_is_pure_legacy(recorded_specs, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_peer_policy(values=[0.2], policies=["arrival", "latency-aware"])
    arrival, adaptive = [s.config for s in recorded_specs[-1]]
    # The baseline runs the untouched legacy retrieve path...
    assert not arrival.health_enabled
    assert arrival.retry_jitter == 0.0
    # ...while adaptive rows switch the whole failure-aware layer on.
    assert adaptive.health_enabled
    assert adaptive.peer_policy == "latency-aware"
    assert adaptive.breaker_threshold > 0
    assert adaptive.hedge_quantile > 0.0
    assert adaptive.retrieve_deadline > 0.0
    assert adaptive.crash_failover
    assert adaptive.retry_jitter > 0.0
    # Paired comparison: identical workload, faults and seed across rows.
    assert arrival.seed == adaptive.seed
    assert arrival.faults == adaptive.faults


def test_fig_policy_faults_scale_with_loss(recorded_specs, monkeypatch):
    set_profile(monkeypatch, "bench")
    sweeps.sweep_peer_policy(values=[0.0, 0.3], policies=["arrival"])
    lossless, lossy = [s.config for s in recorded_specs[-1]]
    assert not lossless.faults.enabled
    assert lossy.faults.p2p.loss == 0.3
    assert lossy.faults.crash.rate > 0.0


def test_fig_policy_rejects_unknown_policy(monkeypatch):
    set_profile(monkeypatch, "bench")
    with pytest.raises(ValueError, match="unknown scoring policies"):
        sweeps.sweep_peer_policy(policies=["fastest-first"])
