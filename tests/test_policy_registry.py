"""Property tests for the policy plugin registry (PR 8 satellite).

Hypothesis drives the registry's contract: duplicate keys always raise,
unknown-key errors list the valid keys verbatim, resolution never depends
on registration order, and ``temporary_policy`` cleans up even when the
``with`` block raises.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.health import SCORING_POLICIES
from repro.policies import registry

# Throwaway keys: lowercase slugs prefixed so they can never collide with
# a builtin policy key (all builtins are bare words like "lru-min").
_slug = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
    min_size=1,
    max_size=12,
)
_tmp_key = _slug.map(lambda s: f"tmp-{s}")
_namespace = st.sampled_from(registry.NAMESPACES)


@given(namespace=_namespace, key=_tmp_key)
def test_duplicate_registration_raises_value_error(namespace, key):
    with registry.temporary_policy(namespace, key, object()):
        with pytest.raises(ValueError) as err:
            registry.register_value(namespace, key, object())
        assert str(err.value) == f"duplicate {namespace} policy {key!r}"
    # the duplicate attempt must not have clobbered or removed the entry
    assert key not in registry.available(namespace)


@given(namespace=_namespace, key=_tmp_key)
def test_unknown_key_error_lists_available_keys_verbatim(namespace, key):
    keys = registry.available(namespace)
    assert key not in keys  # tmp- prefix guarantees this
    with pytest.raises(KeyError) as err:
        registry.describe(namespace, key)
    assert err.value.args[0] == (
        f"unknown {namespace} policy {key!r}; "
        f"available: {', '.join(keys)}"
    )


@given(key=_slug)
def test_unknown_namespace_error_lists_namespaces(key):
    bogus = f"ns-{key}"
    assert bogus not in registry.NAMESPACES
    with pytest.raises(KeyError) as err:
        registry.available(bogus)
    assert err.value.args[0] == (
        f"unknown policy namespace {bogus!r}; "
        f"available: {', '.join(registry.NAMESPACES)}"
    )


@given(
    namespace=_namespace,
    keys=st.lists(_tmp_key, min_size=2, max_size=6, unique=True),
    data=st.data(),
)
@settings(max_examples=50)
def test_resolution_is_registration_order_invariant(namespace, keys, data):
    """Whatever order keys register in, lookups see the same registry."""
    order = data.draw(st.permutations(keys))
    values = {key: object() for key in keys}
    baseline = registry.available(namespace)
    registered = []
    try:
        for key in order:
            registry.register_value(namespace, key, values[key])
            registered.append(key)
        assert registry.available(namespace) == sorted(baseline + keys)
        for key in keys:
            assert registry.resolve(namespace, key) is values[key]
        assert [
            info.key
            for info in registry.entries(namespace)
            if info.key in values
        ] == sorted(keys)
    finally:
        for key in registered:
            registry._REGISTRY[namespace].pop(key, None)


@given(namespace=_namespace, key=_tmp_key)
def test_temporary_policy_cleans_up_on_exception(namespace, key):
    marker = object()
    with pytest.raises(RuntimeError):
        with registry.temporary_policy(namespace, key, marker) as info:
            assert info.value is marker
            assert key in registry.available(namespace)
            raise RuntimeError("boom")
    assert key not in registry.available(namespace)


@given(key=st.one_of(st.just(""), st.integers(), st.none()))
def test_non_string_or_empty_key_is_rejected(key):
    with pytest.raises(ValueError, match="policy key must be"):
        registry.register_value("scheme", key, object())


def test_peer_scoring_namespace_mirrors_scoring_policies():
    assert registry.available("peer-scoring") == sorted(SCORING_POLICIES)
    for key, fn in SCORING_POLICIES.items():
        assert registry.resolve("peer-scoring", key) is fn


def test_entries_metadata_matches_describe():
    for namespace in registry.NAMESPACES:
        infos = registry.entries(namespace)
        assert [info.key for info in infos] == registry.available(namespace)
        for info in infos:
            assert registry.describe(namespace, info.key) == info
            assert info.namespace == namespace
            assert info.summary, f"{namespace}:{info.key} missing summary"


def test_register_decorator_fails_fast_on_unknown_namespace():
    with pytest.raises(KeyError):
        registry.register("not-a-namespace", "key")


def test_every_namespace_has_builtin_policies():
    for namespace in registry.NAMESPACES:
        assert registry.available(namespace), namespace
