"""ResultCache under adversity: corrupt entries, stale versions, races."""

import math
import pickle
import threading

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Results
from repro.experiments.cache import ResultCache, canonical_config


def make_results(requests=100):
    return Results(
        scheme="GC",
        requests=requests,
        local_hits=40,
        global_hits=30,
        global_hits_tcg=15,
        server_requests=30,
        failures=0,
        access_latency=0.01,
        latency_stddev=0.0,
        power_data=1000.0,
        power_signature=100.0,
        power_beacon=10.0,
        power_per_gch=1100.0 / 30,
        validations=0,
        validation_refreshes=0,
        bypassed_searches=0,
        peer_searches=0,
        measured_time=60.0,
        sim_time=360.0,
    )


CONFIG = SimulationConfig(scheme=CachingScheme.GC, seed=3)


def test_truncated_entry_is_a_miss_and_recoverable(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(CONFIG, make_results())
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert cache.get(CONFIG) is None
    assert cache.misses == 1
    # A fresh put heals the entry.
    cache.put(CONFIG, make_results(requests=7))
    restored = cache.get(CONFIG)
    assert restored is not None and restored.requests == 7


def test_garbage_bytes_are_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.path_for(CONFIG).write_bytes(b"not a pickle at all")
    assert cache.get(CONFIG) is None
    assert cache.misses == 1


def test_code_version_mismatch_keys_apart(tmp_path):
    old = ResultCache(tmp_path, code_version="repro-0.9/cache-1")
    new = ResultCache(tmp_path, code_version="repro-1.0/cache-1")
    old.put(CONFIG, make_results())
    assert old.key(CONFIG) != new.key(CONFIG)
    assert new.get(CONFIG) is None  # old entry invisible under the new key
    assert old.get(CONFIG) is not None


def test_payload_for_wrong_config_is_rejected(tmp_path):
    """A hash-collision-shaped entry (wrong embedded config) is a miss."""
    cache = ResultCache(tmp_path)
    other = CONFIG.replace(seed=99)
    payload = {
        "config": canonical_config(other),
        "code_version": cache.code_version,
        "results": make_results(),
    }
    with cache.path_for(CONFIG).open("wb") as handle:
        pickle.dump(payload, handle)
    assert cache.get(CONFIG) is None
    assert cache.misses == 1


def test_non_dict_payload_is_rejected(tmp_path):
    cache = ResultCache(tmp_path)
    with cache.path_for(CONFIG).open("wb") as handle:
        pickle.dump(["wrong", "shape"], handle)
    assert cache.get(CONFIG) is None


def test_concurrent_writers_same_key_leave_one_valid_entry(tmp_path):
    """Threaded same-pid writers must not tear entries or collide on temps."""
    cache = ResultCache(tmp_path)
    errors = []
    barrier = threading.Barrier(8)

    def writer(tag):
        try:
            barrier.wait()
            for _ in range(10):
                cache.put(CONFIG, make_results(requests=tag))
        except Exception as error:  # pragma: no cover - the assertion target
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(tag,)) for tag in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    final = cache.get(CONFIG)
    assert final is not None  # never torn: some writer's entry, intact
    assert final.requests in range(8)
    assert list(tmp_path.glob("*.tmp*")) == []  # no temp litter
    assert len(cache) == 1


def test_concurrent_writers_distinct_keys(tmp_path):
    cache = ResultCache(tmp_path)
    configs = [CONFIG.replace(seed=seed) for seed in range(6)]
    threads = [
        threading.Thread(target=cache.put, args=(c, make_results(requests=i)))
        for i, c in enumerate(configs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for i, config in enumerate(configs):
        entry = cache.get(config)
        assert entry is not None and entry.requests == i
    assert len(cache) == len(configs)


def test_power_per_gch_survives_pickle_round_trip(tmp_path):
    """Infinities in Results (no global hits) round-trip through the cache."""
    cache = ResultCache(tmp_path)
    results = make_results()
    results.global_hits = 0
    results.power_per_gch = math.inf
    cache.put(CONFIG, results)
    restored = cache.get(CONFIG)
    assert restored is not None and math.isinf(restored.power_per_gch)
