"""Every scheduler queue implementation must dispatch identically.

The kernel treats :class:`~repro.sim.kernel.HeapQueue` as the bit-identity
oracle; these tests pin the contract three ways:

* property tests drive :class:`~repro.sim.kernel.CalendarQueue` and the
  heap through identical operation sequences (pushes with same-tick
  bursts, single pops, batched pops with limits, requeues) and demand
  identical observable behaviour at every step;
* whole-environment property tests run one randomly generated scenario —
  timeout bursts, process interrupts, defused failures — once per queue
  implementation and compare the full dispatch trace;
* the committed golden fixtures must replay without drift under *every*
  queue implementation, not just the default.
"""

import shutil
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.check import golden
from repro.sim.kernel import (
    QUEUE_IMPLEMENTATIONS,
    CalendarQueue,
    Environment,
    HeapQueue,
    Interrupt,
)

GOLDEN_FIXTURES = Path(__file__).parent / "golden"

# Few distinct delays -> frequent same-tick collisions; the large values
# land in the calendar's overflow heap and exercise migration.
_DELAYS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 7.75, 64.0, 1000.0])

_OPS = st.one_of(
    st.tuples(st.just("push"), _DELAYS, st.integers(min_value=1, max_value=4)),
    st.tuples(st.just("pop_one")),
    st.tuples(st.just("pop_batch"), _DELAYS),
    st.tuples(st.just("requeue"), st.integers(min_value=0, max_value=3)),
)


@given(st.lists(_OPS, max_size=120))
@settings(max_examples=150, deadline=None)
def test_calendar_matches_heap_on_any_operation_sequence(ops):
    """Lock-step op replay: both queues agree on every observable."""
    calendar = CalendarQueue()
    heap = HeapQueue()
    seq = 0
    token = 0
    now = 0.0  # the kernel never pushes into the past
    for op in ops:
        kind = op[0]
        assert len(calendar) == len(heap)
        assert calendar.peek() == heap.peek()
        if kind == "push":
            _, delay, count = op
            for _ in range(count):
                when = now + delay
                calendar.push(when, seq, token)
                heap.push(when, seq, token)
                seq += 1
                token += 1
        elif kind == "pop_one":
            if not len(heap):
                continue
            got_c = calendar.pop_one()
            got_h = heap.pop_one()
            assert got_c == got_h
            now = got_h[0]
        elif kind == "pop_batch":
            limit = now + op[1]
            got_c = calendar.pop_batch(limit)
            got_h = heap.pop_batch(limit)
            assert got_c == got_h
            if got_h is not None:
                now = got_h[0]
        else:  # requeue: pop a batch, put an unprocessed tail back
            keep = op[1]
            got_c = calendar.pop_batch()
            got_h = heap.pop_batch()
            assert got_c == got_h
            if got_h is None:
                continue
            when, batch = got_h
            now = when
            tail = batch[len(batch) - keep :] if keep else []
            if tail:
                calendar.requeue(when, list(tail))
                heap.requeue(when, list(tail))
    while len(heap):
        assert calendar.pop_one() == heap.pop_one()
    assert calendar.pop_batch() is None and heap.pop_batch() is None
    assert calendar.peek() == heap.peek() == float("inf")


@given(
    st.lists(
        st.tuples(
            _DELAYS,  # spawn delay of this process
            st.integers(min_value=1, max_value=3),  # same-tick timeout burst
            st.booleans(),  # victim of an interrupt?
        ),
        min_size=1,
        max_size=12,
    ),
    st.lists(_DELAYS, max_size=4),  # interrupt instants
)
@settings(max_examples=60, deadline=None)
def test_environments_dispatch_identically_on_every_queue(specs, hits):
    """Same scenario, one full dispatch trace per queue implementation."""

    def run_with(queue_name):
        env = Environment(queue=queue_name)
        trace = []
        victims = []

        def worker(tag, start, burst):
            try:
                yield env.timeout(start)
                for round_no in range(5):
                    burst_events = [
                        env.timeout(1.0, value=(tag, round_no, i))
                        for i in range(burst)
                    ]
                    for event in burst_events:
                        value = yield event
                        trace.append(("fired", env.now, value))
            except Interrupt as interrupt:
                trace.append(("interrupted", env.now, tag, interrupt.cause))

        def failing(tag):
            # A triggered-then-defused failure exercises the error lane of
            # the batch dispatcher without killing the run.
            event = env.event()
            event.fail(RuntimeError(f"boom-{tag}"))
            event.defuse()
            yield env.timeout(0.0)
            trace.append(("survived", env.now, tag))

        def sniper():
            for shot, at in enumerate(sorted(hits)):
                yield env.timeout(max(0.0, at - env.now))
                for victim in victims:
                    if victim.is_alive:
                        victim.interrupt(cause=shot)
                        trace.append(("shot", env.now, shot))
                        break

        for tag, (start, burst, interruptible) in enumerate(specs):
            process = env.process(worker(tag, start, burst))
            if interruptible:
                victims.append(process)
            env.process(failing(tag))
        if hits:
            env.process(sniper())
        env.run(until=50.0)
        return trace, env.now, env.events_processed

    runs = {name: run_with(name) for name in sorted(QUEUE_IMPLEMENTATIONS)}
    reference = runs["heap"]
    for name, run in runs.items():
        assert run[0] == reference[0], f"{name} trace diverged from heap"
        assert run[1] == reference[1]
        assert run[2] == reference[2]


@pytest.mark.parametrize("queue_name", sorted(QUEUE_IMPLEMENTATIONS))
def test_golden_fixture_replays_bit_identical_on_queue(
    queue_name, tmp_path, monkeypatch
):
    """The committed fixtures hold under every queue implementation.

    One representative fixture per queue keeps the runtime bounded; the
    full set replays on the default queue in test_golden_traces.  The GC
    case is the richest (TCG + signatures + NDP traffic).
    """
    shutil.copy(GOLDEN_FIXTURES / "gc-small.json", tmp_path / "gc-small.json")
    monkeypatch.setenv("REPRO_KERNEL_QUEUE", queue_name)
    assert golden.verify(tmp_path) == {"gc-small": []}
