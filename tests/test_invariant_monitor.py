"""The runtime invariant oracle: clean runs, injected bugs, hook units."""

import math

import pytest

from repro.cache.lru import LRUCache
from repro.check import InvariantMonitor, InvariantViolation, run_checked
from repro.core.config import CachingScheme, SimulationConfig
from repro.core.simulation import run_simulation
from repro.net.faults import CrashFaults, FaultPlan, LinkFaults

SMALL = dict(
    n_clients=8,
    n_data=200,
    access_range=40,
    cache_size=8,
    group_size=4,
    measure_requests=8,
    warmup_min_time=30.0,
    warmup_max_time=60.0,
    ndp_enabled=False,
    seed=7,
)


# -- clean runs find nothing ---------------------------------------------------


@pytest.mark.parametrize("scheme", list(CachingScheme))
def test_clean_run_has_zero_violations(scheme):
    config = SimulationConfig(scheme=scheme, **SMALL)
    results, report = run_checked(config)
    assert report.ok
    assert report.checks_run > 0
    assert results.requests > 0
    # The run may end with a search still in flight; conservation over the
    # closed ones (finalize checks the in-flight remainder) must hold.
    assert report.searches_closed <= report.searches_opened
    assert sum(report.search_outcomes.values()) == report.searches_closed


def test_clean_run_with_ndp_faults_and_disconnections():
    """The heaviest protocol mix still satisfies every invariant."""
    config = SimulationConfig(
        scheme=CachingScheme.GC,
        faults=FaultPlan(
            p2p=LinkFaults(loss=0.1, burst_loss=0.3, burst_on=0.05, burst_off=0.5),
            uplink=LinkFaults(loss=0.05),
            downlink=LinkFaults(loss=0.05),
            crash=CrashFaults(rate=0.001, down_min=2.0, down_max=6.0),
        ),
        search_retry_limit=1,
        retrieve_retry_limit=1,
        p_disc=0.05,
        **{**SMALL, "ndp_enabled": True},
    )
    _, report = run_checked(config, mode="collect")
    assert report.violations == []
    assert report.checks_run > 0


def test_monitor_off_results_identical():
    """A monitored run changes nothing observable but the profile."""
    from repro.check.golden import results_to_dict

    config = SimulationConfig(scheme=CachingScheme.CC, **SMALL)
    plain = results_to_dict(run_simulation(config))
    checked_results, report = run_checked(config)
    checked = results_to_dict(checked_results)
    # The audit process adds kernel events, so only the profile may move.
    plain.pop("profile")
    checked.pop("profile")
    assert report.ok
    assert checked == plain


# -- the oracle catches an injected bug ----------------------------------------


#: The planted bug: the capacity check always passes, so neither the
#: client's explicit-eviction path nor the cache's internal backstop in
#: ``insert`` ever fires and the cache grows past capacity.
_broken_is_full = property(lambda self: False)


def test_injected_overcapacity_admit_is_caught(monkeypatch):
    monkeypatch.setattr(LRUCache, "is_full", _broken_is_full)
    config = SimulationConfig(scheme=CachingScheme.LC, **SMALL)
    with pytest.raises(InvariantViolation) as excinfo:
        run_checked(config)
    violation = excinfo.value
    assert violation.invariant == "cache-capacity"
    assert violation.seed == config.seed
    assert violation.sim_time > 0.0
    assert isinstance(violation.host, int)
    assert 0 <= violation.host < config.n_clients
    assert violation.details["occupancy"] > violation.details["capacity"]
    assert "[cache-capacity]" in str(violation)


def test_injected_bug_collect_mode_keeps_running(monkeypatch):
    monkeypatch.setattr(LRUCache, "is_full", _broken_is_full)
    config = SimulationConfig(scheme=CachingScheme.LC, **SMALL)
    results, report = run_checked(config, mode="collect")
    assert not report.ok
    assert results.requests > 0  # the run survived to completion
    assert any(v.invariant == "cache-capacity" for v in report.violations)


# -- hook-level unit tests -----------------------------------------------------


class _FakeEnv:
    def __init__(self, now=5.0):
        self.now = now


class _FakeCondition:
    def __init__(self, env, fired, members):
        self.env = env
        self._fired_count = fired
        self.events = [object()] * members


def test_schedule_in_past_hook():
    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.on_schedule(_FakeEnv(now=5.0), when=4.0)
    assert excinfo.value.invariant == "kernel-schedule-in-past"
    assert excinfo.value.details["when"] == 4.0


def test_step_backwards_hook():
    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.on_step(_FakeEnv(now=5.0), when=3.0)
    assert excinfo.value.invariant == "kernel-time-monotonicity"


def test_condition_overcount_hook():
    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.on_condition_fire(_FakeCondition(_FakeEnv(), fired=3, members=2))
    assert excinfo.value.invariant == "kernel-condition-overcount"


def test_search_concurrency_hook():
    monitor = InvariantMonitor()
    monitor.on_search_open(host=0, sid=(0, 1), now=1.0)
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.on_search_open(host=0, sid=(0, 2), now=2.0)
    assert excinfo.value.invariant == "search-concurrency"
    assert excinfo.value.host == 0


def test_search_close_mismatch_hook():
    monitor = InvariantMonitor()
    monitor.on_search_open(host=3, sid=(3, 1), now=1.0)
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.on_search_close(host=3, sid=(3, 9), outcome="reply", now=2.0)
    assert excinfo.value.invariant == "search-conservation"


def test_search_unknown_outcome_hook():
    monitor = InvariantMonitor()
    monitor.on_search_open(host=1, sid=(1, 1), now=1.0)
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.on_search_close(host=1, sid=(1, 1), outcome="vanished", now=2.0)
    assert excinfo.value.invariant == "search-unknown-outcome"


def test_cache_capacity_hook_direct():
    monitor = InvariantMonitor()
    cache = LRUCache(capacity=1)
    # Bypass insert() to build an illegal two-entry state.
    from repro.cache.lru import CacheEntry

    cache._entries[1] = CacheEntry(item=1)
    cache._entries[2] = CacheEntry(item=2)
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.check_client_cache(host=4, cache=cache, now=10.0)
    assert excinfo.value.invariant == "cache-capacity"


def test_cache_entry_integrity_hook():
    monitor = InvariantMonitor()
    from repro.cache.lru import CacheEntry

    cache = LRUCache(capacity=4)
    cache._entries[1] = CacheEntry(item=99)  # key/entry mismatch
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.check_client_cache(host=0, cache=cache, now=0.0)
    assert excinfo.value.invariant == "cache-entry-integrity"


def test_server_reply_hooks():
    monitor = InvariantMonitor()
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.check_server_reply(
            client=2,
            expiry=1.0,
            retrieve_time=5.0,
            added=set(),
            removed=set(),
            now=5.0,
        )
    assert excinfo.value.invariant == "server-expiry-in-past"
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.check_server_reply(
            client=2,
            expiry=math.inf,
            retrieve_time=9.0,
            added={1},
            removed={1},
            now=5.0,
        )
    # retrieve-from-future fires before the overlap check.
    assert excinfo.value.invariant == "server-retrieve-from-future"
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.check_server_reply(
            client=2,
            expiry=math.inf,
            retrieve_time=5.0,
            added={1, 2},
            removed={2},
            now=5.0,
        )
    assert excinfo.value.invariant == "membership-delta-overlap"


def test_collect_mode_records_instead_of_raising():
    monitor = InvariantMonitor(mode="collect")
    monitor.on_schedule(_FakeEnv(now=5.0), when=4.0)
    report = monitor.report()
    assert not report.ok
    assert [v.invariant for v in report.violations] == ["kernel-schedule-in-past"]
    assert "1 violations" in report.summary()


def test_monitor_constructor_validation():
    with pytest.raises(ValueError):
        InvariantMonitor(mode="panic")
    with pytest.raises(ValueError):
        InvariantMonitor(audit_interval=0.0)
