"""The public API surface: everything advertised must exist and work."""

import repro
import repro.analysis
import repro.delivery
import repro.experiments
import repro.mobility
import repro.net
import repro.sim
import repro.signatures


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


def test_subpackage_exports_resolve():
    for module in (
        repro.sim,
        repro.mobility,
        repro.net,
        repro.delivery,
        repro.experiments,
        repro.signatures,
    ):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_readme_quickstart_snippet_runs():
    """The README's quick-start must stay runnable verbatim (small scale)."""
    from repro import CachingScheme, SimulationConfig, run_simulation

    config = SimulationConfig(
        scheme=CachingScheme.GC,
        n_clients=8,
        n_data=200,
        access_range=40,
        cache_size=8,
        group_size=4,
        measure_requests=5,
        warmup_min_time=30.0,
        warmup_max_time=60.0,
        ndp_enabled=False,
        seed=42,
    )
    results = run_simulation(config)
    assert results.requests >= 40
    assert 0 <= results.gch_ratio <= 100
    assert results.access_latency >= 0


def test_docstrings_everywhere_public():
    """Every public module, class and function carries a doc comment."""
    import inspect
    import pkgutil
    import importlib

    missing = []
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        module = importlib.import_module(info.name)
        if not module.__doc__:
            missing.append(info.name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != info.name:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    missing.append(f"{info.name}.{name}")
    assert not missing, f"undocumented public items: {missing}"
