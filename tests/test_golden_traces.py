"""Golden-trace fixtures: committed replays, round-trips, drift detection."""

import json
from pathlib import Path

import pytest

from repro.check import golden
from repro.core.config import SimulationConfig

FIXTURES = Path(__file__).parent / "golden"


def test_committed_fixtures_exist_for_every_case():
    for name in golden.GOLDEN_CASES:
        assert (FIXTURES / f"{name}.json").is_file(), f"missing fixture {name}"


def test_committed_fixtures_replay_without_drift():
    """The heart of the harness: today's code reproduces the committed runs."""
    diffs = golden.verify(FIXTURES)
    assert set(diffs) == set(golden.GOLDEN_CASES)
    drifted = {name: lines for name, lines in diffs.items() if lines}
    assert drifted == {}


def test_fixture_configs_round_trip_to_the_canonical_cases():
    for name, config in golden.GOLDEN_CASES.items():
        with (FIXTURES / f"{name}.json").open() as handle:
            fixture = json.load(handle)
        assert fixture["format"] == golden.FIXTURE_FORMAT
        assert fixture["name"] == name
        assert SimulationConfig.from_dict(fixture["config"]) == config


def test_record_then_verify_round_trip(tmp_path):
    case = {"lc-small": golden.GOLDEN_CASES["lc-small"]}
    paths = golden.record(tmp_path, cases=case)
    assert [p.name for p in paths] == ["lc-small.json"]
    assert golden.verify(tmp_path) == {"lc-small": []}


def test_verify_detects_a_mutated_counter(tmp_path):
    golden.record(tmp_path, cases={"lc-small": golden.GOLDEN_CASES["lc-small"]})
    path = tmp_path / "lc-small.json"
    fixture = json.loads(path.read_text())
    fixture["results"]["requests"] += 1
    path.write_text(json.dumps(fixture))
    diffs = golden.verify(tmp_path)["lc-small"]
    assert len(diffs) == 1
    assert diffs[0].startswith("results.requests: expected")


def test_verify_raises_on_missing_fixtures(tmp_path):
    with pytest.raises(FileNotFoundError):
        golden.verify(tmp_path / "nowhere")


def test_diff_fixture_reports_nested_new_and_missing_fields():
    expected = {"a": 1, "nested": {"x": 1.5, "y": 2}, "gone": 3}
    actual = {"a": 2, "nested": {"x": 1.5, "y": 7, "z": 0}}
    diffs = golden.diff_fixture(expected, actual)
    assert sorted(diffs) == [
        "results.a: expected 1, got 2",
        "results.gone: missing (expected 3)",
        "results.nested.y: expected 2, got 7",
        "results.nested.z: unexpected new field 0",
    ]


def test_golden_mismatch_message_lists_every_drifted_field():
    error = golden.GoldenMismatch("cc-small", ["results.a: expected 1, got 2"])
    assert "cc-small" in str(error)
    assert "1 field(s)" in str(error)
    assert error.diffs == ["results.a: expected 1, got 2"]
