"""Tests for the Zipf generator, access patterns and the server database."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    AccessPattern,
    ServerDatabase,
    ZipfGenerator,
    build_access_patterns,
)
from repro.sim import Environment


def rng(seed=0):
    return np.random.default_rng(seed)


# -- zipf ------------------------------------------------------------------------


def test_zipf_theta_zero_is_uniform():
    generator = ZipfGenerator(rng(), 10, 0.0)
    for rank in range(10):
        assert generator.probability(rank) == pytest.approx(0.1)


def test_zipf_probabilities_sum_to_one():
    generator = ZipfGenerator(rng(), 50, 0.8)
    assert sum(generator.probability(r) for r in range(50)) == pytest.approx(1.0)


def test_zipf_probabilities_monotone_nonincreasing():
    generator = ZipfGenerator(rng(), 100, 0.9)
    probabilities = [generator.probability(r) for r in range(100)]
    assert all(a >= b - 1e-15 for a, b in zip(probabilities, probabilities[1:]))


def test_zipf_theta_one_ratio():
    generator = ZipfGenerator(rng(), 10, 1.0)
    assert generator.probability(0) / generator.probability(1) == pytest.approx(2.0)


def test_zipf_samples_in_range_and_skewed():
    generator = ZipfGenerator(rng(1), 100, 1.0)
    samples = generator.sample_many(20_000)
    assert samples.min() >= 0
    assert samples.max() < 100
    # Empirical frequency of the hottest rank tracks its probability.
    hottest = (samples == 0).mean()
    assert hottest == pytest.approx(generator.probability(0), rel=0.1)


def test_zipf_single_sample_matches_population():
    generator = ZipfGenerator(rng(2), 5, 0.5)
    counts = np.bincount([generator.sample() for _ in range(5000)], minlength=5)
    assert counts.argmax() == 0


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfGenerator(rng(), 0, 0.5)
    with pytest.raises(ValueError):
        ZipfGenerator(rng(), 10, -0.1)
    generator = ZipfGenerator(rng(), 10, 0.5)
    with pytest.raises(IndexError):
        generator.probability(10)


@given(
    st.integers(min_value=1, max_value=200),
    st.floats(min_value=0.0, max_value=2.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30)
def test_zipf_sample_always_valid(n, theta, seed):
    generator = ZipfGenerator(np.random.default_rng(seed), n, theta)
    for _ in range(20):
        assert 0 <= generator.sample() < n


# -- access patterns ---------------------------------------------------------------


def test_access_pattern_window_wraps():
    pattern = AccessPattern(rng(), n_data=100, access_range=10, theta=0.5, start=95)
    items = {pattern.item_for_rank(r) for r in range(10)}
    assert items == {95, 96, 97, 98, 99, 0, 1, 2, 3, 4}
    assert pattern.covers(97)
    assert pattern.covers(3)
    assert not pattern.covers(50)


def test_access_pattern_next_item_in_window():
    pattern = AccessPattern(rng(3), n_data=1000, access_range=50, theta=0.8, start=10)
    for _ in range(200):
        assert pattern.covers(pattern.next_item())


def test_access_pattern_rank_bounds():
    pattern = AccessPattern(rng(), 100, 10, 0.5, 0)
    with pytest.raises(IndexError):
        pattern.item_for_rank(10)


def test_access_pattern_validation():
    with pytest.raises(ValueError):
        AccessPattern(rng(), 100, 0, 0.5, 0)
    with pytest.raises(ValueError):
        AccessPattern(rng(), 100, 101, 0.5, 0)


def test_build_access_patterns_shared_within_group():
    patterns = build_access_patterns(
        rng(4), group_of=[0, 0, 1, 1], n_data=10_000, access_range=100, theta=0.5
    )
    assert patterns[0].start == patterns[1].start
    assert patterns[2].start == patterns[3].start
    # With 10k items two random groups almost surely differ.
    assert patterns[0].start != patterns[2].start


def test_build_access_patterns_same_hot_item_within_group():
    patterns = build_access_patterns(
        rng(5), group_of=[0, 0], n_data=1000, access_range=20, theta=1.0
    )
    assert patterns[0].item_for_rank(0) == patterns[1].item_for_rank(0)


# -- server database ------------------------------------------------------------------


def test_fresh_database_has_infinite_ttl():
    env = Environment()
    db = ServerDatabase(env, rng(), n_data=10)
    assert db.assign_ttl(0) == math.inf
    assert db.version.sum() == 0


def test_apply_update_bumps_version_and_interval():
    env = Environment()
    db = ServerDatabase(env, rng(), n_data=10)
    env.run(until=4.0)
    db.apply_update(3)
    assert db.version[3] == 1
    assert db.update_interval(3) == pytest.approx(4.0)  # first gap since creation
    assert db.last_update_time(3) == 4.0


def test_ewma_interval_update():
    env = Environment()
    db = ServerDatabase(env, rng(), n_data=10, alpha=0.5)
    env.run(until=10.0)
    db.apply_update(0)  # u = 10
    env.run(until=14.0)
    db.apply_update(0)  # u = 0.5*4 + 0.5*10 = 7
    assert db.update_interval(0) == pytest.approx(7.0)


def test_assign_ttl_decreases_with_item_age():
    env = Environment()
    db = ServerDatabase(env, rng(), n_data=10, alpha=1.0)
    env.run(until=10.0)
    db.apply_update(0)  # u = 10, t_l = 10
    env.run(until=13.0)
    assert db.assign_ttl(0) == pytest.approx(7.0)
    env.run(until=25.0)
    assert db.assign_ttl(0) == 0.0  # never negative


def test_examine_idle_items_ages_interval_without_touching_t_l():
    env = Environment()
    db = ServerDatabase(env, rng(), n_data=10, alpha=0.5)
    env.run(until=2.0)
    db.apply_update(0)  # u = 2, t_l = 2
    env.run(until=10.0)
    aged = db.examine_idle_items()  # idle 8 > u=2 -> u = 0.5*8 + 0.5*2 = 5
    assert aged == 1
    assert db.update_interval(0) == pytest.approx(5.0)
    assert db.last_update_time(0) == 2.0
    # Fresh items (nan interval) are never aged.
    assert math.isnan(db.update_interval(1))


def test_examine_skips_recently_updated():
    env = Environment()
    db = ServerDatabase(env, rng(), n_data=5, alpha=0.5)
    env.run(until=10.0)
    db.apply_update(0)  # u = 10
    env.run(until=12.0)
    assert db.examine_idle_items() == 0  # idle 2 < 10


def test_updated_since():
    env = Environment()
    db = ServerDatabase(env, rng(), n_data=5)
    env.run(until=3.0)
    db.apply_update(2)
    assert db.updated_since(2, retrieve_time=1.0)
    assert not db.updated_since(2, retrieve_time=3.0)
    assert not db.updated_since(0, retrieve_time=1.0)


def test_update_process_rate():
    env = Environment()
    db = ServerDatabase(env, rng(6), n_data=1000, update_rate=5.0)
    env.run(until=200.0)
    # ~1000 updates expected; allow generous slack.
    assert 700 <= db.updates_applied <= 1300


def test_no_update_process_when_rate_zero():
    env = Environment()
    db = ServerDatabase(env, rng(), n_data=10, update_rate=0.0)
    env.run(until=100.0)
    assert db.updates_applied == 0
    assert env.peek() == math.inf  # no lingering processes


def test_database_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ServerDatabase(env, rng(), n_data=0)
    with pytest.raises(ValueError):
        ServerDatabase(env, rng(), n_data=5, update_rate=-1)
    with pytest.raises(ValueError):
        ServerDatabase(env, rng(), n_data=5, alpha=2.0)
    with pytest.raises(ValueError):
        ServerDatabase(env, rng(), n_data=5, examine_interval=0)
