"""The incremental lint cache: correctness, invalidation, byte-identity."""

import io
import json
from pathlib import Path

from repro.analysis.cache import (
    LintCache,
    env_fingerprint,
    file_key,
    project_key,
)
from repro.analysis.engine import LintViolation
from repro.analysis.runner import run_lint

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures" / "project"


def report_for(paths, tmp_path, name, **kwargs):
    report = tmp_path / f"{name}.json"
    stream = io.StringIO()
    code = run_lint(
        paths,
        baseline_path=None,
        json_report=report,
        stream=stream,
        **kwargs,
    )
    return code, report.read_bytes()


# -- cache primitives ---------------------------------------------------------


def test_file_key_changes_with_content_and_path():
    assert file_key("a.py", "x = 1") != file_key("a.py", "x = 2")
    assert file_key("a.py", "x = 1") != file_key("b.py", "x = 1")


def test_project_key_covers_docs(tmp_path):
    keys = ["k1", "k2"]
    (tmp_path / "DESIGN.md").write_text("one")
    before = project_key(keys, tmp_path)
    (tmp_path / "DESIGN.md").write_text("two")
    assert project_key(keys, tmp_path) != before
    # Order of file keys must not matter.
    assert project_key(["k2", "k1"], tmp_path) == project_key(keys, tmp_path)


def test_env_fingerprint_is_stable():
    assert env_fingerprint() == env_fingerprint()


def test_cache_roundtrips_every_violation_field(tmp_path):
    cache = LintCache(tmp_path)
    violation = LintViolation(
        rule="r",
        path="p.py",
        line=3,
        column=2,
        message="m",
        hint="h",
        severity="warning",
        scope="project",
        start_line=1,
        end_line=5,
    )
    cache.put("file", "key", [violation])
    assert cache.get("file", "key") == [violation]


def test_cache_miss_on_unknown_key(tmp_path):
    cache = LintCache(tmp_path)
    assert cache.get("file", "nope") is None
    assert cache.misses == 1


# -- end-to-end byte-identity -------------------------------------------------


def test_cached_and_uncached_reports_are_byte_identical(tmp_path):
    root = FIXTURES / "kernel_violating"
    cache_dir = tmp_path / "cache"
    common = dict(project=True, project_root=root)
    code_cold, cold = report_for(
        [root], tmp_path, "cold", use_cache=True, cache_dir=cache_dir, **common
    )
    code_warm, warm = report_for(
        [root], tmp_path, "warm", use_cache=True, cache_dir=cache_dir, **common
    )
    code_none, none = report_for(
        [root], tmp_path, "none", use_cache=False, **common
    )
    assert code_cold == code_warm == code_none == 1
    assert cold == warm == none


def test_warm_run_hits_the_cache(tmp_path):
    root = FIXTURES / "rng_clean"
    cache_dir = tmp_path / "cache"
    for _ in range(2):
        run_lint(
            [root],
            baseline_path=None,
            stream=io.StringIO(),
            project=True,
            use_cache=True,
            cache_dir=cache_dir,
            project_root=root,
        )
    entries = list((cache_dir / env_fingerprint()).glob("*.json"))
    # Two file entries plus one project entry.
    assert len(entries) == 3


def test_editing_a_file_invalidates_its_entry_and_the_project_pass(tmp_path):
    src = tmp_path / "proj"
    src.mkdir()
    module = src / "mod.py"
    module.write_text("X = 1\n")
    cache_dir = tmp_path / "cache"

    def lint():
        stream = io.StringIO()
        code = run_lint(
            [src],
            baseline_path=None,
            stream=stream,
            project=True,
            use_cache=True,
            cache_dir=cache_dir,
            project_root=src,
        )
        return code, stream.getvalue()

    assert lint()[0] == 0
    # Introduce a finding; the cached clean result must not mask it.
    module.write_text("import time\nT = time.time()\n")
    code, output = lint()
    assert code == 1
    assert "no-wall-clock" in output


def test_pragma_edit_takes_effect_despite_cache(tmp_path):
    # Raw findings are cached pre-pragma, so adding a pragma both changes
    # the file key AND is re-applied; removing it re-arms the finding.
    src = tmp_path / "proj"
    src.mkdir()
    module = src / "mod.py"
    cache_dir = tmp_path / "cache"
    module.write_text("import time\nT = time.time()\n")

    def lint():
        return run_lint(
            [src],
            baseline_path=None,
            stream=io.StringIO(),
            use_cache=True,
            cache_dir=cache_dir,
        )

    assert lint() == 1
    module.write_text(
        "import time\n"
        "T = time.time()  # simlint: allow[no-wall-clock] reason=test\n"
    )
    assert lint() == 0
    module.write_text("import time\nT = time.time()\n")
    assert lint() == 1


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    root = FIXTURES / "rng_clean"
    cache_dir = tmp_path / "cache"
    args = dict(
        baseline_path=None,
        project=True,
        use_cache=True,
        cache_dir=cache_dir,
        project_root=root,
    )
    run_lint([root], stream=io.StringIO(), **args)
    for entry in (cache_dir / env_fingerprint()).glob("*.json"):
        entry.write_text("{not json")
    stream = io.StringIO()
    assert run_lint([root], stream=stream, **args) == 0


def test_json_report_has_stable_shape(tmp_path):
    root = FIXTURES / "config_violating"
    _code, payload = report_for(
        [root],
        tmp_path,
        "shape",
        project=True,
        use_cache=False,
        project_root=root,
    )
    report = json.loads(payload)
    assert report["new_count"] == report["counts_by_rule"]["config-field-flow"]
    assert all(v["scope"] == "project" for v in report["violations"])
