"""Differential scheme-ordering tests (the paper's qualitative claims).

Section VI's headline orderings must hold on paired seeds: cooperation
can only add ways to hit (GC >= CC >= LC on global cache hits), and a
bigger cache can only lower access latency.  Tolerances absorb the noise
floor of the deliberately tiny configurations.
"""

import pytest

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.simulation import run_simulation

SMALL = dict(
    n_clients=8,
    n_data=200,
    access_range=40,
    cache_size=8,
    group_size=4,
    measure_requests=8,
    warmup_min_time=30.0,
    warmup_max_time=60.0,
    ndp_enabled=False,
)

#: Percentage points of slack on hit-ratio orderings.
RATIO_TOL = 1.0

#: Wider slack for the registry's non-paper policies: they deliberately
#: trade peak hit ratio for other properties (probabilistic admission,
#: TTL-aware or popularity-based eviction), so they are held to the CC
#: baseline with room for that trade, not to stock GroCoCa.
POLICY_TOL = 5.0

#: The registered policy variants, each layered on the GC scheme.
POLICY_VARIANTS = {
    "admission:probcache": {"admission_policy": "probcache"},
    "admission:lcd": {"admission_policy": "lcd"},
    "replacement:lru-min": {"replacement_policy": "lru-min"},
    "replacement:greedy-dual": {"replacement_policy": "greedy-dual"},
    "replacement:popularity-rank": {"replacement_policy": "popularity-rank"},
}


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_global_hit_ratio_ordering_gc_cc_lc(seed):
    config = SimulationConfig(seed=seed, **SMALL)
    by_scheme = {
        scheme: run_simulation(config.with_scheme(scheme))
        for scheme in CachingScheme
    }
    lc = by_scheme[CachingScheme.LC].gch_ratio
    cc = by_scheme[CachingScheme.CC].gch_ratio
    gc = by_scheme[CachingScheme.GC].gch_ratio
    assert lc == 0.0  # conventional caching has no peers to hit
    assert cc >= lc - RATIO_TOL
    assert gc >= cc - RATIO_TOL
    assert gc > 0.0 and cc > 0.0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_cooperation_reduces_server_dependence(seed):
    """Peer hits must come out of the server's share, not local hits."""
    config = SimulationConfig(seed=seed, **SMALL)
    lc = run_simulation(config.with_scheme(CachingScheme.LC))
    cc = run_simulation(config.with_scheme(CachingScheme.CC))
    assert cc.server_request_ratio <= lc.server_request_ratio + RATIO_TOL


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("variant", sorted(POLICY_VARIANTS), ids=str)
def test_policy_variants_retain_cooperation(variant, seed):
    """Swapping in any registered policy must not break cooperation.

    Every variant still hits peers (GCH > 0) and still takes a large
    bite out of the server's share relative to no cooperation at all.
    """
    config = SimulationConfig(
        scheme=CachingScheme.GC, seed=seed, **SMALL,
        **POLICY_VARIANTS[variant],
    )
    lc = run_simulation(
        SimulationConfig(scheme=CachingScheme.LC, seed=seed, **SMALL)
    )
    swapped = run_simulation(config)
    assert swapped.gch_ratio > 0.0
    # empirically the worst variant stays >20 points below LC's server
    # share on these seeds; 10 points is the claim worth defending
    assert swapped.server_request_ratio <= lc.server_request_ratio - 10.0


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("variant", sorted(POLICY_VARIANTS), ids=str)
def test_policy_variants_track_the_cc_baseline(variant, seed):
    """New policies trade hit ratio, but never collapse below flat CC.

    Stock GroCoCa is the ceiling (its admission/replacement are tuned to
    the paper's workload); the floor worth pinning is the cooperative
    baseline: every variant's global hit ratio stays within
    ``POLICY_TOL`` points of CC on paired seeds.
    """
    cc = run_simulation(
        SimulationConfig(scheme=CachingScheme.CC, seed=seed, **SMALL)
    )
    swapped = run_simulation(
        SimulationConfig(
            scheme=CachingScheme.GC, seed=seed, **SMALL,
            **POLICY_VARIANTS[variant],
        )
    )
    assert swapped.gch_ratio >= cc.gch_ratio - POLICY_TOL


@pytest.mark.parametrize("scheme", [CachingScheme.CC, CachingScheme.GC])
def test_latency_monotone_in_cache_size(scheme):
    """Fig. 2's shape: more cache never makes access latency worse."""
    sizes = [4, 8, 16, 32]
    latencies = []
    for size in sizes:
        config = SimulationConfig(
            scheme=scheme, seed=5, **{**SMALL, "cache_size": size}
        )
        latencies.append(run_simulation(config).access_latency)
    # Pairwise non-increasing within a 15% noise band, and the end points
    # must show a genuine improvement.
    for smaller, larger in zip(latencies, latencies[1:]):
        assert larger <= smaller * 1.15
    assert latencies[-1] < latencies[0]
