"""The failure-aware retrieve path end-to-end (client + simulation).

Covers the tentpole acceptance criteria: adaptive policies dominate
``arrival`` on mean query latency under bursty loss (3 seeds), the
breaker/hedge machinery engages under the invariant monitor, the trace
contract reconciles the new instants, crash fast-failover fires, and
jittered backoff stays deterministic.
"""

import pytest

from repro.check.monitor import InvariantMonitor
from repro.core.client import _SearchState
from repro.core.config import CachingScheme, SimulationConfig
from repro.core.simulation import Simulation, run_simulation
from repro.net.faults import CrashFaults, FaultPlan, LinkFaults
from repro.obs.contract import check_trace
from repro.obs.session import Observer

_BASE = dict(
    scheme=CachingScheme.GC,
    n_clients=8,
    n_data=200,
    access_range=40,
    cache_size=8,
    group_size=4,
    measure_requests=12,
    warmup_min_time=30.0,
    warmup_max_time=60.0,
    ndp_enabled=False,
)

_ADAPTIVE = dict(
    breaker_threshold=3,
    breaker_cooldown=2.0,
    hedge_quantile=0.9,
    retrieve_deadline=5.0,
    crash_failover=True,
    retry_jitter=0.1,
)


def _bursty_plan(loss=0.25):
    return FaultPlan(
        p2p=LinkFaults(
            loss=loss,
            burst_loss=min(1.0, 2.0 * loss),
            burst_on=0.05,
            burst_off=0.5,
        ),
        uplink=LinkFaults(loss=loss / 4.0),
        downlink=LinkFaults(loss=loss / 4.0),
        crash=CrashFaults(rate=0.0005, down_min=2.0, down_max=8.0),
    )


def _config(policy, seed, loss=0.25, **overrides):
    settings = dict(
        _BASE,
        seed=seed,
        faults=_bursty_plan(loss),
        search_retry_limit=1,
        retrieve_retry_limit=2,
        uplink_retry_limit=3,
    )
    if policy != "arrival":
        settings.update(_ADAPTIVE, peer_policy=policy)
    settings.update(overrides)
    return SimulationConfig(**settings)


def test_health_layer_off_by_default():
    config = SimulationConfig(**_BASE, seed=1)
    assert not config.health_enabled
    simulation = Simulation(config)
    assert all(client.health is None for client in simulation.clients)
    assert all(client._jitter_rng is None for client in simulation.clients)
    # No health counters pollute the profile of a legacy run.
    profile = simulation.profile(0.0)
    assert not any(name.startswith("health_") for name in profile.counters)


def test_any_adaptive_knob_enables_the_layer():
    for knob in (
        {"peer_policy": "least-pending"},
        {"breaker_threshold": 2},
        {"hedge_quantile": 0.5},
        {"retrieve_deadline": 1.0},
        {"crash_failover": True},
    ):
        config = SimulationConfig(**_BASE, seed=1, **knob)
        assert config.health_enabled, knob


SEEDS = (11, 12, 13)


@pytest.mark.parametrize("policy", ["least-pending", "latency-aware"])
def test_adaptive_policies_dominate_arrival_under_bursty_loss(policy):
    """ISSUE 7 acceptance: adaptive beats arrival at p_loss >= 0.2."""
    arrival = [
        run_simulation(_config("arrival", seed)).access_latency
        for seed in SEEDS
    ]
    adaptive = [
        run_simulation(_config(policy, seed)).access_latency for seed in SEEDS
    ]
    mean_arrival = sum(arrival) / len(arrival)
    mean_adaptive = sum(adaptive) / len(adaptive)
    assert mean_adaptive < mean_arrival, (
        f"{policy} mean latency {mean_adaptive:.4f} not better than "
        f"arrival {mean_arrival:.4f} (per-seed: {adaptive} vs {arrival})"
    )


def test_breakers_engage_and_monitor_stays_clean():
    monitor = InvariantMonitor(mode="collect")
    results = run_simulation(_config("latency-aware", 11), monitor=monitor)
    report = monitor.report()
    assert report.ok, [str(v) for v in report.violations]
    counters = results.profile.counters
    assert counters["health_breaker_trips"] > 0
    assert counters["health_breaker_probes"] > 0
    # Monitor hedge accounting agrees with the tracker totals.
    assert report.hedges == counters["health_hedges"]
    assert report.hedge_wins == counters["health_hedge_wins"]
    assert report.hedge_wins <= report.hedges


def test_trace_contract_reconciles_health_instants():
    observer = Observer(sample_period=5.0)
    results = run_simulation(_config("latency-aware", 12), observer=observer)
    problems = check_trace(
        observer.tracer.events, results=results, profile=results.profile
    )
    assert problems == [], "\n".join(problems)
    assert results.health.get("breaker_trip", 0) > 0


def test_jittered_backoff_is_deterministic_and_bounded():
    config = _config("latency-aware", 13)
    first = run_simulation(config)
    second = run_simulation(config)
    assert first == second  # same seed, same jitter draws, same outcome
    simulation = Simulation(config)
    host = simulation.clients[0]
    base = host.config.retry_backoff_base
    for _ in range(50):
        delay = host._backoff_delay(base)
        assert base * (1.0 - 0.1) <= delay <= base * (1.0 + 0.1)
    # Zero jitter: the delay is exactly the unjittered backoff.
    legacy = Simulation(SimulationConfig(**_BASE, seed=13))
    assert legacy.clients[0]._backoff_delay(base) == base


def test_crash_fast_failover_fires_immediately():
    """A replier crashing between replying and serving is detected via the
    down-watcher instead of burning the full data guard."""
    config = SimulationConfig(
        **_BASE,
        seed=5,
        peer_policy="latency-aware",
        crash_failover=True,
        think_time_mean=1e9,  # quiesce background traffic
    )
    simulation = Simulation(config)
    env = simulation.env
    requester = simulation.clients[0]
    replier = simulation.clients[1]
    state = _SearchState(item=0, started=0.0, reply_event=env.event())
    reply = {"peer": replier.index, "path": [0, replier.index]}
    state.replies.append(reply)
    outcome = {}

    def retrieve():
        data = yield from requester._retrieve_with_fallback("sid", state, reply)
        outcome["data"] = data

    def crash_mid_wait():
        # Past the RETRIEVE air time (~0.2 ms) but well inside the
        # ~50 ms data guard: the down-watcher, not the guard, must end
        # the wait.
        yield env.timeout(0.02)
        replier.crash()

    env.process(retrieve())
    env.process(crash_mid_wait())
    env.run(until=30.0)
    assert outcome["data"] is None  # no other replier: falls back to MSS
    assert requester.health.counts["fast_failovers"] == 1
    # The watcher was withdrawn: no stale event fires on reconnection.
    assert not simulation.network._down_watchers


def test_deadline_budget_stops_retry_chains():
    """With an expired budget the failover loop stops instead of walking
    every remaining replier."""
    config = SimulationConfig(
        **_BASE,
        seed=6,
        peer_policy="arrival",
        retrieve_deadline=0.25,
        retrieve_retry_limit=3,
        think_time_mean=1e9,
    )
    simulation = Simulation(config)
    env = simulation.env
    requester = simulation.clients[0]
    # A search that started well before now: the budget is already blown
    # after the first failed attempt, whatever the guard duration was.
    state = _SearchState(item=0, started=-10.0, reply_event=env.event())
    # Three repliers, none of which will ever serve (no cached item).
    for peer in (1, 2, 3):
        state.replies.append({"peer": peer, "path": [0, peer]})
    outcome = {}

    def retrieve():
        data = yield from requester._retrieve_with_fallback(
            "sid", state, state.replies[0]
        )
        outcome["data"] = data

    env.process(retrieve())
    env.run(until=60.0)
    assert outcome["data"] is None
    assert requester.health.counts["budget_exhausted"] == 1
    # Budget cut the chain after the first replier; 2 and 3 never tried.
    assert set(requester.health._peers) == {1}


def test_all_repliers_circuit_broken_falls_straight_to_mss():
    config = SimulationConfig(
        **_BASE,
        seed=7,
        peer_policy="arrival",
        breaker_threshold=1,
        think_time_mean=1e9,
    )
    simulation = Simulation(config)
    env = simulation.env
    requester = simulation.clients[0]
    # Trip the only replier's breaker.
    requester.health.begin_attempt(1, env.now)
    requester.health.record_failure(1, env.now)
    state = _SearchState(item=0, started=0.0, reply_event=env.event())
    state.replies.append({"peer": 1, "path": [0, 1]})
    outcome = {}

    def retrieve():
        data = yield from requester._retrieve_with_fallback(
            "sid", state, state.replies[0]
        )
        outcome["data"] = data

    env.process(retrieve())
    env.run(until=1.0)
    # Immediate None — no retrieve was ever sent at the broken peer.
    assert outcome["data"] is None
    assert requester.health.peer(1).pending == 0
