"""Tests for the Table I power model and the per-host ledger."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import PowerLedger, PowerModel, PowerParameters


def test_table1_point_to_point_rows():
    model = PowerModel()
    b = 100
    assert model.ptp_send(b) == pytest.approx(1.9 * b + 454)
    assert model.ptp_recv(b) == pytest.approx(0.5 * b + 356)
    # Discard rows are size-independent (v = 0) with the paper's fixed costs.
    assert model.ptp_discard_sd(b) == pytest.approx(70.0)
    assert model.ptp_discard_s(b) == pytest.approx(24.0)
    assert model.ptp_discard_d(b) == pytest.approx(56.0)
    assert model.ptp_discard_sd(10 * b) == model.ptp_discard_sd(b)


def test_table1_broadcast_rows():
    model = PowerModel()
    b = 64
    assert model.bc_send(b) == pytest.approx(1.9 * b + 266)
    assert model.bc_recv(b) == pytest.approx(0.5 * b + 56)


def test_custom_parameters():
    model = PowerModel(PowerParameters(ptp_send_v=2.0, ptp_send_f=100.0))
    assert model.ptp_send(10) == pytest.approx(120.0)


@given(st.integers(min_value=1, max_value=10**6))
def test_send_always_costs_more_than_recv(size):
    model = PowerModel()
    assert model.ptp_send(size) > model.ptp_recv(size)
    assert model.bc_send(size) > model.bc_recv(size)


def test_ledger_charge_and_totals():
    ledger = PowerLedger(3)
    ledger.charge(0, 10.0, "data")
    ledger.charge(0, 5.0, "signature")
    ledger.charge(2, 7.0, "beacon")
    assert ledger.host_total(0) == pytest.approx(15.0)
    assert ledger.host_total(1) == 0.0
    assert ledger.total() == pytest.approx(22.0)
    assert ledger.total("data") == pytest.approx(10.0)
    assert ledger.by_purpose() == pytest.approx(
        {"data": 10.0, "signature": 5.0, "beacon": 7.0}
    )


def test_ledger_charge_many():
    ledger = PowerLedger(4)
    ledger.charge_many([1, 3], 2.5)
    assert ledger.host_total(1) == pytest.approx(2.5)
    assert ledger.host_total(3) == pytest.approx(2.5)
    ledger.charge_many(np.array([], dtype=int), 1.0)  # no-op
    assert ledger.total() == pytest.approx(5.0)


def test_ledger_rejects_negative_charges():
    ledger = PowerLedger(2)
    with pytest.raises(ValueError):
        ledger.charge(0, -1.0)
    with pytest.raises(ValueError):
        ledger.charge_many([0], -1.0)


def test_ledger_rejects_empty():
    with pytest.raises(ValueError):
        PowerLedger(0)


def test_ledger_unknown_purpose_raises():
    ledger = PowerLedger(1)
    with pytest.raises(KeyError):
        ledger.charge(0, 1.0, "nonsense")
