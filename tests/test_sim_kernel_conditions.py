"""Edge cases of AnyOf/AllOf condition composition and failure handling."""


from repro.sim import AllOf, AnyOf, Environment


def test_any_of_fails_when_member_fails():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield env.any_of([gate, env.timeout(100)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    gate.fail(RuntimeError("member failed"))
    env.run(until=10)
    assert caught == ["member failed"]


def test_all_of_fails_fast_on_first_failure():
    env = Environment()
    gate = env.event()
    slow = None
    caught = []

    def waiter():
        nonlocal slow
        slow = env.timeout(50)
        try:
            yield AllOf(env, [gate, slow])
        except ValueError:
            caught.append(env.now)

    env.process(waiter())
    gate.fail(ValueError("nope"))
    env.run(until=100)
    assert caught == [0]  # did not wait for the 50s timeout


def test_late_failure_after_condition_fired_is_defused():
    env = Environment()
    gate = env.event()
    fired_at = []

    def waiter():
        yield AnyOf(env, [env.timeout(1), gate])
        fired_at.append(env.now)

    env.process(waiter())

    def late_failer():
        yield env.timeout(5)
        gate.fail(RuntimeError("too late to matter"))

    env.process(late_failer())
    env.run()  # must not raise: the condition already fired
    assert fired_at == [1]


def test_nested_conditions():
    env = Environment()
    log = []

    def waiter():
        inner = AnyOf(env, [env.timeout(3, value="a"), env.timeout(9, value="b")])
        outer = AllOf(env, [inner, env.timeout(5, value="c")])
        yield outer
        log.append(env.now)

    env.process(waiter())
    env.run()
    assert log == [5]


def test_all_of_empty_fires_immediately():
    env = Environment()
    log = []

    def waiter():
        result = yield AllOf(env, [])
        log.append(result)

    env.process(waiter())
    env.run()
    assert log == [{}]


def test_condition_value_maps_fired_events_only():
    env = Environment()
    seen = {}

    def waiter():
        fast = env.timeout(1, value="fast")
        slow = env.timeout(10, value="slow")
        result = yield AnyOf(env, [fast, slow])
        seen.update(result)

    env.process(waiter())
    env.run(until=20)
    assert list(seen.values()) == ["fast"]


def test_shared_event_across_conditions():
    env = Environment()
    gate = env.event()
    order = []

    def waiter(tag, condition):
        yield condition
        order.append((tag, env.now))

    env.process(waiter("any", AnyOf(env, [gate])))
    env.process(waiter("all", AllOf(env, [gate])))

    def opener():
        yield env.timeout(2)
        gate.succeed("open")

    env.process(opener())
    env.run()
    assert sorted(order) == [("all", 2), ("any", 2)]
