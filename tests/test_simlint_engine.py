"""Engine-level simlint behaviour: sources, pragmas, baseline, runner."""

import io
import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.engine import (
    META_RULES,
    LintViolation,
    ModuleSource,
    all_rules,
    known_rule_ids,
    lint_paths,
    lint_source,
)
from repro.analysis.runner import run_lint

FIXTURES = Path(__file__).parent / "lint_fixtures"


def lint_fixture(name):
    module = ModuleSource.from_path(FIXTURES / name)
    return lint_source(module, all_rules())


def marker_line(name, marker):
    """1-indexed line of a MARK comment in a fixture file."""
    text = (FIXTURES / name).read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        if marker in line:
            return number
    raise AssertionError(f"marker {marker!r} not found in {name}")


def test_registry_covers_all_rule_families():
    ids = {rule.id for rule in all_rules()}
    assert {
        "no-stdlib-random",
        "no-direct-rng",
        "no-wall-clock",
        "set-iteration-order",
        "kernel-yield-non-event",
        "kernel-blocking-call",
        "kernel-stale-now",
        "unknown-config-field",
        "unknown-results-field",
        "config-field-unvalidated",
    } <= ids
    assert set(META_RULES) <= known_rule_ids()


def test_qualified_name_resolves_import_aliases():
    module = ModuleSource(
        Path("x.py"),
        "import numpy as np\nfrom os import path as osp\nnp.random.default_rng\nosp.join\n",
    )
    tree = module.tree
    rng_expr = tree.body[2].value
    join_expr = tree.body[3].value
    assert module.qualified_name(rng_expr) == "numpy.random.default_rng"
    assert module.qualified_name(join_expr) == "os.path.join"


def test_clean_fixture_has_no_findings():
    assert lint_fixture("clean_module.py") == []


def test_parse_error_is_reported_and_stops_other_rules():
    findings = lint_fixture("broken_syntax.py")
    assert len(findings) == 1
    assert findings[0].rule == "parse-error"


def test_valid_pragma_suppresses_and_is_not_flagged():
    findings = lint_fixture("pragma_cases.py")
    rules = [f.rule for f in findings]
    # The valid suppression leaves no no-wall-clock finding at its line...
    suppressed_line = marker_line("pragma_cases.py", "valid suppression")
    assert not any(
        f.line == suppressed_line and f.rule == "no-wall-clock" for f in findings
    )
    # ...and the three defective pragmas each surface as a meta finding.
    assert rules.count("pragma-missing-reason") == 1
    assert rules.count("pragma-unknown-rule") == 1
    assert rules.count("pragma-unused") == 1


def test_pragma_meta_findings_carry_the_pragma_line():
    findings = lint_fixture("pragma_cases.py")
    by_rule = {f.rule: f.line for f in findings}
    assert by_rule["pragma-missing-reason"] == marker_line(
        "pragma_cases.py", "MARK:pragma-missing-reason"
    )
    assert by_rule["pragma-unknown-rule"] == marker_line(
        "pragma_cases.py", "MARK:pragma-unknown-rule"
    )
    assert by_rule["pragma-unused"] == marker_line(
        "pragma_cases.py", "MARK:pragma-unused"
    )


def test_pragma_in_string_literal_is_inert():
    module = ModuleSource(
        Path("x.py"),
        'HINT = "# simlint: allow[no-wall-clock] reason=doc example"\n',
    )
    assert lint_source(module, all_rules()) == []


def test_violation_as_dict_and_location():
    violation = LintViolation(
        rule="no-wall-clock", path="a.py", line=3, column=7, message="m", hint="h"
    )
    assert violation.location == "a.py:3:7"
    payload = violation.as_dict()
    assert payload["rule"] == "no-wall-clock"
    assert payload["line"] == 3


def test_baseline_split_new_grandfathered_stale(tmp_path):
    old = LintViolation("no-wall-clock", "a.py", 3, 1, "old finding")
    gone = LintViolation("no-wall-clock", "a.py", 9, 1, "fixed finding")
    baseline = Baseline.from_violations([(old, "t = time.time()"), (gone, "x()")])
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)

    fresh = LintViolation("no-wall-clock", "a.py", 30, 1, "new finding")
    moved_old = LintViolation("no-wall-clock", "a.py", 5, 1, "old finding")
    new, grandfathered, stale = loaded.split(
        [(moved_old, "t = time.time()"), (fresh, "u = time.time()  # other")]
    )
    # The old finding moved lines but keeps its content fingerprint.
    assert [v.line for v in grandfathered] == [5]
    assert [v.line for v in new] == [30]
    assert len(stale) == 1  # the fixed finding's entry is reported stale


def test_baseline_fingerprint_ignores_line_numbers():
    a = LintViolation("r", "p.py", 10, 1, "m")
    b = LintViolation("r", "p.py", 99, 5, "different message")
    assert fingerprint(a, "x = 1") == fingerprint(b, "  x = 1  ")


def test_baseline_rejects_unknown_format(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"format": 99, "entries": []}))
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_run_lint_exit_codes_and_json_report(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT = time.time()\n")
    report_path = tmp_path / "report.json"
    stream = io.StringIO()
    code = run_lint(
        [bad], baseline_path=None, json_report=report_path, stream=stream
    )
    assert code == 1
    payload = json.loads(report_path.read_text())
    assert payload["new_count"] == 1
    assert payload["violations"][0]["rule"] == "no-wall-clock"

    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    assert run_lint([clean], baseline_path=None, stream=io.StringIO()) == 0


def test_run_lint_update_baseline_then_clean(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT = time.time()\n")
    baseline = tmp_path / "baseline.json"
    assert (
        run_lint(
            [bad],
            baseline_path=baseline,
            update_baseline=True,
            stream=io.StringIO(),
        )
        == 0
    )
    # Grandfathered now: the same tree lints clean against the baseline.
    assert run_lint([bad], baseline_path=baseline, stream=io.StringIO()) == 0
    # A second, new violation still fails.
    bad.write_text("import time\nT = time.time()\nU = time.monotonic()\n")
    assert run_lint([bad], baseline_path=baseline, stream=io.StringIO()) == 1


def test_update_baseline_never_grandfathers_meta_findings(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def nope(:\n")
    baseline = tmp_path / "baseline.json"
    code = run_lint(
        [bad], baseline_path=baseline, update_baseline=True, stream=io.StringIO()
    )
    assert code == 1  # the meta finding was not swept under the rug
    assert json.loads(baseline.read_text())["entries"] == []


def test_lint_paths_walks_directories():
    report = lint_paths([FIXTURES])
    assert any(v.rule == "no-stdlib-random" for v in report.violations)
    assert any(f.endswith("clean_module.py") for f in report.files)
