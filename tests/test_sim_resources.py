"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


def test_resource_serializes_users():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def user(tag, hold):
        grant = resource.request()
        yield grant
        log.append(("start", tag, env.now))
        yield env.timeout(hold)
        resource.release(grant)
        log.append(("end", tag, env.now))

    env.process(user("a", 5))
    env.process(user("b", 3))
    env.run()
    assert log == [
        ("start", "a", 0),
        ("end", "a", 5),
        ("start", "b", 5),
        ("end", "b", 8),
    ]


def test_resource_capacity_two_runs_concurrently():
    env = Environment()
    resource = Resource(env, capacity=2)
    starts = []

    def user(tag):
        grant = resource.request()
        yield grant
        starts.append((tag, env.now))
        yield env.timeout(10)
        resource.release(grant)

    for tag in range(3):
        env.process(user(tag))
    env.run()
    assert starts == [(0, 0), (1, 0), (2, 10)]


def test_resource_fifo_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def user(tag, arrive):
        yield env.timeout(arrive)
        grant = resource.request()
        yield grant
        order.append(tag)
        yield env.timeout(100)
        resource.release(grant)

    for tag, arrive in enumerate([0, 1, 2, 3]):
        env.process(user(tag, arrive))
    env.run()
    assert order == [0, 1, 2, 3]


def test_resource_acquire_helper():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def user(tag):
        yield from resource.acquire(4)
        log.append((tag, env.now))

    env.process(user("x"))
    env.process(user("y"))
    env.run()
    assert log == [("x", 4), ("y", 8)]


def test_resource_release_queued_request_cancels_it():
    env = Environment()
    resource = Resource(env, capacity=1)
    held = resource.request()
    queued = resource.request()
    assert resource.queue_length == 1
    resource.release(queued)  # cancel while still waiting
    assert resource.queue_length == 0
    resource.release(held)
    assert resource.count == 0


def test_resource_release_unknown_grant_raises():
    env = Environment()
    resource = Resource(env, capacity=1)
    foreign = env.event()
    with pytest.raises(SimulationError):
        resource.release(foreign)


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_counters():
    env = Environment()
    resource = Resource(env, capacity=1)
    first = resource.request()
    resource.request()
    assert resource.count == 1
    assert resource.queue_length == 1
    resource.release(first)
    assert resource.count == 1
    assert resource.queue_length == 0


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    got = []

    def getter():
        got.append((yield store.get()))
        got.append((yield store.get()))

    env.process(getter())
    env.run()
    assert got == ["a", "b"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def getter():
        item = yield store.get()
        got.append((env.now, item))

    def putter():
        yield env.timeout(6)
        store.put("late")

    env.process(getter())
    env.process(putter())
    env.run()
    assert got == [(6, "late")]


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def getter(tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(getter(1))
    env.process(getter(2))

    def putter():
        yield env.timeout(1)
        store.put("x")
        store.put("y")

    env.process(putter())
    env.run()
    assert got == [(1, "x"), (2, "y")]


def test_store_len():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    assert len(store) == 1
