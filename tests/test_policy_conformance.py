"""Auto-parametrised conformance battery over every registered policy.

``conformance_keys()`` enumerates the registry, so a policy added with
one ``@register`` line is covered here with no test edits.  Each key's
battery run is memoised at module scope: the four check assertions below
share one report instead of re-running three simulations per check.

The negative test proves the battery has teeth — a deliberately
stateful policy (class-level counter leaking across runs) must fail the
seed-stability check.
"""

import functools

import pytest

from repro.policies import registry
from repro.policies.conformance import (
    conformance_config,
    conformance_keys,
    run_conformance,
)
from repro.policies.replacement import ReplacementPolicy

KEYS = conformance_keys()
IDS = [f"{namespace}:{key}" for namespace, key in KEYS]


@functools.lru_cache(maxsize=None)
def report_for(namespace, key):
    return run_conformance(namespace, key)


def test_battery_covers_every_registered_policy():
    expected = {
        (namespace, key)
        for namespace in registry.NAMESPACES
        for key in registry.available(namespace)
    }
    assert set(KEYS) == expected
    assert len(KEYS) == len(set(KEYS))


@pytest.mark.parametrize("namespace,key", KEYS, ids=IDS)
def test_registered_policy_passes_battery(namespace, key):
    report = report_for(namespace, key)
    assert report.passed, f"{namespace}:{key} failed: {report.failures}"
    assert set(report.checks) == {
        "invariants",
        "smoke",
        "seed_stable",
        "round_trip",
    }
    assert all(report.checks.values()), report.checks


@pytest.mark.parametrize("namespace,key", KEYS, ids=IDS)
def test_conformance_config_resolves_the_requested_policy(namespace, key):
    from repro.policies.factory import resolved_policy_keys

    config = conformance_config(namespace, key)
    if namespace == "peer-scoring":
        assert config.peer_policy == key
    elif namespace == "scheme":
        assert config.scheme.value.lower() == key
    else:
        assert resolved_policy_keys(config)[namespace] == key


def test_report_as_dict_is_json_shaped():
    namespace, key = KEYS[0]
    payload = report_for(namespace, key).as_dict()
    assert payload["namespace"] == namespace
    assert payload["key"] == key
    assert isinstance(payload["checks"], dict)
    assert isinstance(payload["failures"], list)
    assert isinstance(payload["hit_ratio"], float)


class _LeakyReplacement(ReplacementPolicy):
    """Victim choice depends on a class-level counter: run-to-run state."""

    calls = 0  # deliberately class-level — leaks across simulation runs

    def select_victim(self, now):
        if not len(self.cache):
            return None
        type(self).calls += 1
        window = self.cache.lru_entries(2)
        self.evictions += 1
        return window[type(self).calls % len(window)]


def test_battery_rejects_a_run_to_run_stateful_policy():
    _LeakyReplacement.calls = 0

    def build(config, cache, signature_scheme, peer_signature):
        return _LeakyReplacement(cache)

    with registry.temporary_policy(
        "replacement", "tmp-leaky", build, summary="negative-test plant"
    ):
        report = run_conformance("replacement", "tmp-leaky")
    assert not report.passed
    assert not report.checks["seed_stable"]
    assert any("seed_stable" in failure for failure in report.failures)
