"""Whole-program (``--project``) simlint: rules, fixtures, CLI, baseline v2."""

import io
import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.engine import LintViolation
from repro.analysis.runner import run_lint
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "simlint-baseline.json"
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures" / "project"


def lint_fixture(case: str):
    """(exit code, output text) of a project lint over one fixture dir."""
    root = FIXTURES / case
    stream = io.StringIO()
    code = run_lint(
        [root],
        baseline_path=None,
        stream=stream,
        project=True,
        use_cache=False,
        project_root=root,
    )
    return code, stream.getvalue()


# -- one triad per rule family -------------------------------------------------


@pytest.mark.parametrize(
    "case, rule",
    [
        ("rng_violating", "rng-provenance"),
        ("shared_stream_violating", "rng-shared-stream"),
        ("kernel_violating", "kernel-transitive-hazard"),
        ("config_violating", "config-field-flow"),
        ("registry_violating", "registry-consistency"),
    ],
)
def test_violating_fixture_fails_with_rule_id(case, rule):
    code, output = lint_fixture(case)
    assert code == 1
    assert rule in output


@pytest.mark.parametrize(
    "case",
    ["rng_clean", "kernel_clean", "config_clean", "registry_clean"],
)
def test_clean_fixture_passes(case):
    code, output = lint_fixture(case)
    assert code == 0, output


@pytest.mark.parametrize(
    "case",
    [
        "rng_pragma",
        "shared_stream_pragma",
        "kernel_pragma",
        "config_pragma",
        "registry_pragma",
    ],
)
def test_pragma_fixture_suppresses_and_counts_as_used(case):
    code, output = lint_fixture(case)
    # Exit 0 twice over: the finding is suppressed AND the pragma is not
    # flagged pragma-unused (project findings were part of the run).
    assert code == 0, output
    assert "pragma-unused" not in output


# -- finding specifics --------------------------------------------------------


def test_rng_provenance_names_the_traced_value():
    _code, output = lint_fixture("rng_violating")
    assert "FakeRng instance" in output
    assert "not a RandomStreams stream" in output


def test_shared_stream_reports_every_owner():
    _code, output = lint_fixture("shared_stream_violating")
    assert output.count("'shared-name'") == 2
    assert "layer_a" in output and "layer_b" in output


def test_kernel_fixture_catches_blocking_and_set_flow():
    _code, output = lint_fixture("kernel_violating")
    assert "blocking call to time.sleep()" in output
    assert "hash order reaches the kernel" in output


def test_config_fixture_reports_dead_and_undocumented():
    _code, output = lint_fixture("config_violating")
    assert "never read outside" in output
    assert "absent from DESIGN.md and EXPERIMENTS.md" in output
    assert "used_metric" not in output


def test_registry_fixture_reports_all_three_drifts():
    _code, output = lint_fixture("registry_violating")
    assert "'mystery' is registered but never mentioned" in output
    assert "'ghost' but no register() site" in output
    assert "'orphaned' is registered in orphan" in output
    assert "_load_builtins never" in output


# -- project pragmas in file-only runs ----------------------------------------


def test_project_pragma_not_unused_in_file_only_run():
    # Without --project the kernel_pragma pragmas excuse findings that
    # were never computed; the unused audit must not fire for them.
    root = FIXTURES / "kernel_pragma"
    stream = io.StringIO()
    code = run_lint(
        [root], baseline_path=None, stream=stream, use_cache=False
    )
    assert code == 0, stream.getvalue()


# -- the shipped tree ---------------------------------------------------------


def test_shipped_tree_is_project_clean_modulo_baseline():
    stream = io.StringIO()
    code = run_lint(
        [SRC],
        baseline_path=BASELINE,
        stream=stream,
        project=True,
        use_cache=False,
        project_root=REPO_ROOT,
    )
    assert code == 0, f"project lint found new violations:\n{stream.getvalue()}"


# -- CLI ----------------------------------------------------------------------


def test_cli_project_flag(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(FIXTURES / "rng_violating")
    assert (
        main(["lint", ".", "--no-baseline", "--project", "--no-cache"]) == 1
    )
    assert "rng-provenance" in capsys.readouterr().out


def test_cli_rules_catalogue_lists_project_rules(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "rng-provenance",
        "rng-shared-stream",
        "kernel-transitive-hazard",
        "config-field-flow",
        "registry-consistency",
    ):
        assert rule in out


def test_cli_update_and_prune_are_mutually_exclusive(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    code = main(
        [
            "lint",
            str(clean),
            "--baseline",
            str(tmp_path / "b.json"),
            "--update-baseline",
            "--prune-baseline",
        ]
    )
    assert code == 2


# -- baseline v2 --------------------------------------------------------------


def project_violation(message="m"):
    return LintViolation(
        rule="config-field-flow",
        path="src/x.py",
        line=4,
        column=1,
        message=message,
        scope="project",
    )


def test_project_fingerprint_keys_on_message_not_line():
    a = project_violation("field 'k' is dead")
    b = LintViolation(
        rule="config-field-flow",
        path="src/x.py",
        line=99,
        column=7,
        message="field 'k' is dead",
        scope="project",
    )
    assert fingerprint(a, "anything") == fingerprint(b, "else entirely")
    assert fingerprint(a, "x") != fingerprint(project_violation("other"), "x")


def test_baseline_v1_auto_upgrades_on_load(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "format": 1,
                "entries": [
                    {
                        "fingerprint": "abc",
                        "rule": "r",
                        "path": "p.py",
                        "line": 1,
                        "note": "n",
                    }
                ],
            }
        )
    )
    loaded = Baseline.load(path)
    assert loaded.entries[0]["scope"] == "file"
    loaded.save(path)
    payload = json.loads(path.read_text())
    assert payload["format"] == 2
    assert payload["entries"][0]["scope"] == "file"


def test_baseline_save_is_idempotent(tmp_path):
    path = tmp_path / "baseline.json"
    baseline = Baseline.from_violations([(project_violation(), "line")])
    assert baseline.save(path) is True
    before = path.read_bytes()
    assert baseline.save(path) is False
    assert path.read_bytes() == before


def test_baseline_reasons_survive_update(tmp_path):
    violation = project_violation()
    key = fingerprint(violation, "line")
    baseline = Baseline.from_violations(
        [(violation, "line")], reasons={key: "known drift, tracked in #42"}
    )
    assert baseline.entries[0]["reason"] == "known drift, tracked in #42"
    rebuilt = Baseline.from_violations(
        [(violation, "line")], reasons=baseline.reasons()
    )
    assert rebuilt.entries[0]["reason"] == "known drift, tracked in #42"


def test_update_baseline_noop_leaves_file_byte_identical(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT = time.time()\n")
    baseline = tmp_path / "baseline.json"
    run_lint(
        [bad],
        baseline_path=baseline,
        update_baseline=True,
        use_cache=False,
        stream=io.StringIO(),
    )
    before = baseline.read_bytes()
    stream = io.StringIO()
    run_lint(
        [bad],
        baseline_path=baseline,
        update_baseline=True,
        use_cache=False,
        stream=stream,
    )
    assert baseline.read_bytes() == before
    assert "already up to date" in stream.getvalue()


def test_prune_baseline_removes_only_stale_entries(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT = time.time()\nU = time.monotonic()\n")
    baseline = tmp_path / "baseline.json"
    run_lint(
        [bad],
        baseline_path=baseline,
        update_baseline=True,
        use_cache=False,
        stream=io.StringIO(),
    )
    assert len(json.loads(baseline.read_text())["entries"]) == 2
    # Fix one finding; its entry goes stale, the other still fires.
    bad.write_text("import time\nT = time.time()\n")
    stream = io.StringIO()
    code = run_lint(
        [bad],
        baseline_path=baseline,
        prune_baseline=True,
        use_cache=False,
        stream=stream,
    )
    assert code == 0
    output = stream.getvalue()
    assert "pruned" in output
    entries = json.loads(baseline.read_text())["entries"]
    assert len(entries) == 1
    assert "time.time" in str(entries[0]["note"]) or entries[0]["line"] == 2
    # Still-firing entry survived: the tree stays clean modulo baseline.
    assert (
        run_lint(
            [bad], baseline_path=baseline, use_cache=False, stream=io.StringIO()
        )
        == 0
    )


def test_prune_baseline_noop_reports_nothing_stale(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT = time.time()\n")
    baseline = tmp_path / "baseline.json"
    run_lint(
        [bad],
        baseline_path=baseline,
        update_baseline=True,
        use_cache=False,
        stream=io.StringIO(),
    )
    before = baseline.read_bytes()
    stream = io.StringIO()
    run_lint(
        [bad],
        baseline_path=baseline,
        prune_baseline=True,
        use_cache=False,
        stream=stream,
    )
    assert "no stale entries" in stream.getvalue()
    assert baseline.read_bytes() == before
