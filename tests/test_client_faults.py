"""Protocol edge cases under crashes and scripted message loss.

Reuses the stationary :class:`~tests.test_core_client_protocol.World`
harness; loss is scripted per delivery (not sampled) so every test is a
deterministic walk through one recovery path: requester crashing
mid-search, a reply racing a crash, a relay dying mid-route, search
re-floods and retrieve failover.
"""

from repro.core.config import CachingScheme
from tests.test_core_client_protocol import CHAIN, NEAR, World


class ScriptedFaults:
    """Stands in for a FaultInjector: drops follow a fixed per-delivery
    script (then pass everything)."""

    def __init__(self, script):
        self.script = list(script)

    def drop_p2p(self, receiver: int) -> bool:
        return self.script.pop(0) if self.script else False

    def drop_uplink(self) -> bool:
        return False

    def drop_downlink(self) -> bool:
        return False


# -- crash-stop edge cases ----------------------------------------------------


def test_access_while_crashed_fails_fast():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.clients[0].crash()
    world.access(0, 7)
    assert world.outcome_counts() == {"FAILURE": 1}
    assert world.clients[0].crashes == 1
    assert world.clients[0].disconnections == 0


def test_requester_crashing_mid_search_fails_without_server_fallback():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(1, item=7)
    requester, peer = world.clients[0], world.clients[1]

    # The instant the peer hears the search, the requester's radio dies.
    original = peer._on_request

    def crash_then_handle(message):
        requester.crash()
        original(message)

    peer._on_request = crash_then_handle
    world.access(0, 7)
    # The reply could not be delivered, the search timed out, and the MSS
    # was out of reach too: the access fails outright.
    assert world.outcome_counts() == {"FAILURE": 1}
    assert world.network.failed_unicasts >= 1
    assert requester._searches == {}  # search state cleaned up


def test_relay_dying_mid_route_falls_back_to_server():
    world = World(CHAIN, scheme=CachingScheme.CC, hop_dist=2)
    world.give_item(2, item=9)
    requester, relay = world.clients[0], world.clients[1]

    # The relay forwarded the reply, then dies before the retrieve.
    original = requester._on_reply

    def crash_relay_then_handle(message):
        relay.crash()
        original(message)

    requester._on_reply = crash_relay_then_handle
    world.access(0, 9)
    # The retrieve's first hop is dead, so the search yields nothing and
    # the requester (still connected) falls back to the MSS.
    assert world.outcome_counts() == {"SERVER": 1}
    assert world.metrics.mss_fallbacks == 1
    assert world.network.failed_unicasts >= 1


def test_crash_and_recover_cycle():
    world = World(NEAR, scheme=CachingScheme.GC)
    client = world.clients[1]
    client.crash()
    assert not client.connected
    assert not world.network.is_connected(1)
    world.env.process(client.recover())
    world.env.run(until=5.0)
    assert client.connected
    assert world.network.is_connected(1)
    assert client.last_server_contact > 0.0  # GroCoCa membership resync ran
    assert client.crashes == 1
    assert client.disconnections == 0


# -- scripted message loss ----------------------------------------------------


def test_lost_request_recovered_by_refloood():
    world = World(NEAR, scheme=CachingScheme.CC, search_retry_limit=1)
    world.give_item(1, item=7)
    # Drop exactly the first delivery (the REQUEST reaching the peer).
    world.network.faults = ScriptedFaults([True])
    world.access(0, 7)
    assert world.outcome_counts() == {"GLOBAL_HIT": 1}
    assert world.metrics.retries["search"] == 1
    assert world.metrics.mss_fallbacks == 0


def test_lost_reply_is_not_double_served_on_refloood():
    world = World(NEAR, scheme=CachingScheme.CC, search_retry_limit=1)
    world.give_item(1, item=7)
    # REQUEST passes, the REPLY back to host 0 is lost.  The re-flood is
    # suppressed by the peer's seen-sequence table (no second reply), so
    # the requester ends at the MSS with exactly one recorded request.
    world.network.faults = ScriptedFaults([False, True])
    world.access(0, 7)
    assert world.outcome_counts() == {"SERVER": 1}
    assert world.metrics.requests == 1
    assert world.metrics.retries["search"] == 1
    assert world.metrics.mss_fallbacks == 1


def test_failed_retrieve_fails_over_to_next_replier():
    triangle = [(0.0, 0.0), (30.0, 0.0), (0.0, 30.0)]
    world = World(triangle, scheme=CachingScheme.CC, retrieve_retry_limit=1)
    world.give_item(1, item=7)
    world.give_item(2, item=7)

    # The first replier (host 1: handlers run in index order) evicts its
    # copy the moment it has replied, so the retrieve aimed at it starves.
    original_send_reply = world.clients[1]._send_reply

    def reply_then_evict(request, entry):
        yield from original_send_reply(request, entry)
        if 7 in world.clients[1].cache:
            world.clients[1].cache.evict(7)

    world.clients[1]._send_reply = reply_then_evict
    world.access(0, 7)
    assert world.outcome_counts() == {"GLOBAL_HIT": 1}
    assert world.metrics.retries["retrieve"] == 1
    assert world.metrics.mss_fallbacks == 0


def test_without_retry_budget_failed_retrieve_ends_at_server():
    world = World(NEAR, scheme=CachingScheme.CC)  # retrieve_retry_limit=0
    world.give_item(1, item=7)
    original_send_reply = world.clients[1]._send_reply

    def reply_then_evict(request, entry):
        yield from original_send_reply(request, entry)
        if 7 in world.clients[1].cache:
            world.clients[1].cache.evict(7)

    world.clients[1]._send_reply = reply_then_evict
    world.access(0, 7)
    assert world.outcome_counts() == {"SERVER": 1}
    assert world.metrics.retries["retrieve"] == 0
    assert world.metrics.mss_fallbacks == 1
