"""Tests for SimulationConfig and Metrics/Results."""

import math

import pytest

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Metrics, RequestOutcome
from repro.net.power import PowerLedger


def test_scheme_flags():
    assert not CachingScheme.LC.cooperative
    assert CachingScheme.CC.cooperative
    assert CachingScheme.GC.cooperative
    assert CachingScheme.GC.group_based
    assert not CachingScheme.CC.group_based


def test_config_defaults_are_valid():
    config = SimulationConfig()
    assert config.n_clients == 100
    assert config.n_data == 10_000
    assert config.cache_size == 100
    assert config.scheme is CachingScheme.GC


@pytest.mark.parametrize(
    "overrides",
    [
        {"n_clients": 0},
        {"cache_size": 0},
        {"access_range": 0},
        {"access_range": 20_000},
        {"hop_dist": 0},
        {"p_disc": 1.5},
        {"disc_min": 10.0, "disc_max": 5.0},
        {"omega": -0.1},
        {"alpha": 1.5},
        {"explicit_update_portion": 2.0},
        {"group_size": 0},
        {"replace_candidate": 0},
        {"replace_delay": 0},
        {"measure_requests": 0},
        {"think_time_mean": 0.0},
        {"beacon_interval": 0.0},
        {"congestion_phi": 0.0},
        {"deviation_phi": -1.0},
        {"tran_range": 0.0},
        {"bw_downlink": 0.0},
        {"bw_uplink": -1.0},
        {"bw_p2p": 0.0},
        {"faults": None},
        {"search_retry_limit": -1},
        {"retrieve_retry_limit": -1},
        {"uplink_retry_limit": -1},
        {"retry_backoff_base": 0.0},
    ],
)
def test_config_validation(overrides):
    with pytest.raises(ValueError):
        SimulationConfig(**overrides)


def test_with_scheme_and_replace():
    config = SimulationConfig()
    lc = config.with_scheme(CachingScheme.LC)
    assert lc.scheme is CachingScheme.LC
    assert lc.n_clients == config.n_clients
    small = config.replace(n_clients=10, cache_size=5)
    assert small.n_clients == 10
    assert config.n_clients == 100  # original untouched


def test_metrics_ignores_before_recording():
    metrics = Metrics("GC")
    metrics.record_request(0, RequestOutcome.LOCAL_HIT, 0.1)
    metrics.record_validation(True)
    metrics.record_search(False)
    assert metrics.requests == 0
    assert metrics.validations == 0
    assert metrics.peer_searches == 0


def test_metrics_counts_and_ratios():
    metrics = Metrics("CC")
    ledger = PowerLedger(2)
    metrics.start_recording(10.0, ledger, n_clients=2)
    metrics.record_request(0, RequestOutcome.LOCAL_HIT, 0.0)
    metrics.record_request(0, RequestOutcome.GLOBAL_HIT, 0.01, from_tcg=True)
    metrics.record_request(1, RequestOutcome.SERVER, 0.05)
    metrics.record_request(1, RequestOutcome.SERVER, 0.03)
    ledger.charge(0, 100.0, "data")
    ledger.charge(0, 20.0, "signature")
    ledger.charge(1, 50.0, "beacon")
    results = metrics.results(20.0, ledger)
    assert results.requests == 4
    assert results.lch_ratio == pytest.approx(25.0)
    assert results.gch_ratio == pytest.approx(25.0)
    assert results.server_request_ratio == pytest.approx(50.0)
    assert results.global_hits_tcg == 1
    assert results.access_latency == pytest.approx((0 + 0.01 + 0.05 + 0.03) / 4)
    assert results.power_per_gch == pytest.approx(120.0)  # data + signature
    assert results.measured_time == pytest.approx(10.0)


def test_metrics_power_baseline_subtracted():
    metrics = Metrics("CC")
    ledger = PowerLedger(1)
    ledger.charge(0, 500.0, "data")  # warm-up consumption
    metrics.start_recording(0.0, ledger, n_clients=1)
    metrics.record_request(0, RequestOutcome.GLOBAL_HIT, 0.01)
    ledger.charge(0, 80.0, "data")
    results = metrics.results(1.0, ledger)
    assert results.power_data == pytest.approx(80.0)
    assert results.power_per_gch == pytest.approx(80.0)


def test_metrics_beacon_power_optional():
    metrics = Metrics("CC")
    ledger = PowerLedger(1)
    metrics.start_recording(0.0, ledger, n_clients=1)
    metrics.record_request(0, RequestOutcome.GLOBAL_HIT, 0.01)
    ledger.charge(0, 10.0, "data")
    ledger.charge(0, 7.0, "beacon")
    assert metrics.results(1.0, ledger).power_per_gch == pytest.approx(10.0)
    assert metrics.results(
        1.0, ledger, count_beacon_power=True
    ).power_per_gch == pytest.approx(17.0)


def test_metrics_power_per_gch_inf_without_hits():
    metrics = Metrics("LC")
    ledger = PowerLedger(1)
    metrics.start_recording(0.0, ledger, n_clients=1)
    metrics.record_request(0, RequestOutcome.SERVER, 0.1)
    assert math.isinf(metrics.results(1.0, ledger).power_per_gch)


def test_metrics_min_client_requests():
    metrics = Metrics("GC")
    ledger = PowerLedger(3)
    assert metrics.min_client_requests() == 0
    metrics.start_recording(0.0, ledger, n_clients=3)
    metrics.record_request(0, RequestOutcome.LOCAL_HIT, 0.0)
    metrics.record_request(0, RequestOutcome.LOCAL_HIT, 0.0)
    metrics.record_request(2, RequestOutcome.LOCAL_HIT, 0.0)
    assert metrics.min_client_requests() == 0  # client 1 has none
    metrics.record_request(1, RequestOutcome.LOCAL_HIT, 0.0)
    assert metrics.min_client_requests() == 1


def test_results_as_dict_keys():
    metrics = Metrics("GC")
    ledger = PowerLedger(1)
    metrics.start_recording(0.0, ledger, n_clients=1)
    data = metrics.results(1.0, ledger).as_dict()
    assert {"scheme", "access_latency", "server_request_ratio", "gch_ratio"} <= set(
        data
    )
