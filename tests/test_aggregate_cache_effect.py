"""The aggregate-cache effect of GroCoCa's cooperative cache management.

Section IV-E's purpose is to make a TCG's caches behave like one big
cache: admission control avoids duplicating what a member already holds,
and cooperative replacement evicts likely-replicas first.  This test runs
GroCoCa with the two protocols on and off (same seed) and checks that they
measurably increase the number of *distinct* items held per motion group.
"""

import numpy as np

from repro import CachingScheme, SimulationConfig
from repro.core.simulation import Simulation


def build(seed, cooperative):
    config = SimulationConfig(
        scheme=CachingScheme.GC,
        n_clients=15,
        n_data=1000,
        access_range=120,
        cache_size=25,
        group_size=5,
        measure_requests=40,
        warmup_min_time=150.0,
        warmup_max_time=250.0,
        ndp_enabled=False,
        admission_control=cooperative,
        cooperative_replacement=cooperative,
        seed=seed,
    )
    sim = Simulation(config)
    sim.run()
    return sim


def distinct_items_per_group(sim):
    groups = {}
    for index, group in enumerate(sim.group_of):
        groups.setdefault(group, set()).update(sim.clients[index].cache.items())
    return [len(items) for items in groups.values()]


def duplication_factor(sim):
    """cached copies / distinct items, averaged over groups (1 = no dupes)."""
    factors = []
    groups = {}
    for index, group in enumerate(sim.group_of):
        groups.setdefault(group, []).append(sim.clients[index])
    for members in groups.values():
        copies = sum(len(client.cache) for client in members)
        distinct = len(set().union(*(c.cache.items() for c in members)))
        if distinct:
            factors.append(copies / distinct)
    return float(np.mean(factors))


def test_cooperative_management_enlarges_the_aggregate_cache():
    managed = build(seed=21, cooperative=True)
    unmanaged = build(seed=21, cooperative=False)
    assert np.mean(distinct_items_per_group(managed)) > np.mean(
        distinct_items_per_group(unmanaged)
    )
    assert duplication_factor(managed) < duplication_factor(unmanaged)


def test_cooperative_management_earns_global_hits():
    managed = build(seed=22, cooperative=True)
    unmanaged = build(seed=22, cooperative=False)
    managed_results = managed.metrics.results(managed.env.now, managed.ledger)
    unmanaged_results = unmanaged.metrics.results(
        unmanaged.env.now, unmanaged.ledger
    )
    # More distinct items in the group -> at least comparable GCH.
    assert managed_results.gch_ratio > unmanaged_results.gch_ratio - 1.0
