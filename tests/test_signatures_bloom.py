"""Tests for the Bloom filter scheme and counting Bloom filters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures import CountingBloomFilter, SignatureScheme


def scheme(size=1024, k=2, seed=0):
    return SignatureScheme(np.random.default_rng(seed), size, k)


def test_positions_deterministic_and_in_range():
    s = scheme()
    first = s.positions(1234)
    assert first == s.positions(1234)
    assert len(first) == 2
    assert all(0 <= p < 1024 for p in first)


def test_positions_differ_across_schemes_with_seeds():
    assert scheme(seed=1).positions(7) != scheme(seed=2).positions(7)


def test_bloom_no_false_negatives_basic():
    s = scheme()
    bloom = s.make_filter()
    bloom.add_all(range(50))
    for item in range(50):
        assert bloom.might_contain(item)


@given(st.sets(st.integers(min_value=0, max_value=10**9), max_size=100))
@settings(max_examples=50)
def test_bloom_no_false_negatives_property(items):
    s = scheme(size=512, k=3, seed=7)
    bloom = s.make_filter()
    bloom.add_all(items)
    assert all(bloom.might_contain(item) for item in items)


def test_bloom_definitely_not_present_when_bits_clear():
    s = scheme(size=4096, k=2)
    bloom = s.make_filter()
    bloom.add(1)
    misses = sum(not bloom.might_contain(item) for item in range(100, 200))
    assert misses >= 95  # nearly everything else is a definite miss


def test_false_positive_rate_tracks_analytic_model():
    s = scheme(size=1024, k=2, seed=3)
    bloom = s.make_filter()
    inserted = list(range(200))
    bloom.add_all(inserted)
    probes = range(10_000, 20_000)
    observed = sum(bloom.might_contain(item) for item in probes) / len(list(probes))
    predicted = s.false_positive_probability(200)
    assert observed == pytest.approx(predicted, rel=0.25)


def test_optimal_k_formula():
    assert SignatureScheme.optimal_k(1024, 100) == round(0.6931 * 1024 / 100)
    assert SignatureScheme.optimal_k(8, 10_000) == 1  # never below 1


def test_false_positive_probability_monotone_in_items():
    s = scheme()
    values = [s.false_positive_probability(n) for n in (0, 10, 100, 1000)]
    assert values[0] == 0.0
    assert all(a <= b for a, b in zip(values, values[1:]))


def test_superimpose_and_covers():
    s = scheme()
    a = s.make_filter()
    a.add_all([1, 2, 3])
    b = s.make_filter()
    b.add_all([4, 5])
    union = a.copy()
    union.superimpose(b)
    for item in (1, 2, 3, 4, 5):
        assert union.might_contain(item)
    search = s.data_signature(2)
    assert union.covers(search)
    assert a.covers(search)
    assert not b.covers(search) or b.might_contain(2)  # only via false positive


def test_cross_scheme_operations_rejected():
    a = scheme(seed=1).make_filter()
    b = scheme(seed=2).make_filter()
    with pytest.raises(ValueError):
        a.superimpose(b)
    with pytest.raises(ValueError):
        a.covers(b)


def test_size_bytes():
    assert scheme(size=1000).make_filter().size_bytes == 125
    assert scheme(size=1001).make_filter().size_bytes == 126


def test_scheme_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        SignatureScheme(rng, 0, 2)
    with pytest.raises(ValueError):
        SignatureScheme(rng, 10, 0)
    with pytest.raises(ValueError):
        scheme().false_positive_probability(-1)
    with pytest.raises(ValueError):
        SignatureScheme.optimal_k(10, 0)


# -- counting bloom filter ------------------------------------------------------


def test_counting_add_remove_roundtrip():
    counting = CountingBloomFilter(scheme(), counter_bits=4)
    counting.add(1)
    counting.add(2)
    assert counting.might_contain(1)
    assert counting.remove(1)
    assert counting.might_contain(2)
    signature = counting.signature()
    assert signature.might_contain(2)


def test_counting_signature_equals_rebuilt_bloom():
    s = scheme()
    counting = CountingBloomFilter(s, counter_bits=8)
    items = [3, 1, 4, 1, 5, 9, 2, 6]  # duplicates exercise counters > 1
    for item in items:
        counting.add(item)
    for item in (1, 9):
        assert counting.remove(item)
    reference = s.make_filter()
    reference.add_all([3, 4, 1, 5, 2, 6])
    assert np.array_equal(counting.signature().bits, reference.bits)


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=60))
@settings(max_examples=50)
def test_counting_matches_rebuild_property(items):
    """add/remove bookkeeping == rebuild from scratch (absent saturation)."""
    s = scheme(size=2048, k=2, seed=11)
    counting = CountingBloomFilter(s, counter_bits=8)  # high cap: no saturation
    for item in items:
        counting.add(item)
    removed = items[::2]
    for item in removed:
        assert counting.remove(item)
    remaining = list(items)
    for item in removed:
        remaining.remove(item)
    reference = CountingBloomFilter(s, counter_bits=8)
    for item in remaining:
        reference.add(item)
    assert np.array_equal(counting.counters, reference.counters)


def test_counting_saturation_sticks():
    counting = CountingBloomFilter(scheme(), counter_bits=1)  # max value 1
    counting.add(1)
    counting.add(1)  # increment discarded at saturation
    position = counting.scheme.positions(1)[0]
    assert counting.counters[position] == 1


def test_counting_remove_at_zero_requests_rebuild():
    counting = CountingBloomFilter(scheme(), counter_bits=4)
    assert not counting.remove(42)  # nothing cached: rebuild signal
    counting.rebuild([1, 2, 3])
    assert counting.rebuilds == 1
    assert counting.might_contain(2)
    assert not counting.remove(42) or True  # may collide; no crash


def test_counting_validation():
    with pytest.raises(ValueError):
        CountingBloomFilter(scheme(), counter_bits=0)
