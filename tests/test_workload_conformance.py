"""Auto-parametrised conformance battery over every registered workload.

``conformance_keys()`` enumerates the registry, so a workload added with
one ``@register`` line is covered here with no test edits.  Each key's
battery run is memoised at module scope: the check assertions below
share one report instead of re-running the simulations per check.

The negative test proves the constant-memory check has teeth — a
deliberately hoarding stream (one that materialises every request it
serves) must blow past the bound.
"""

import functools

import pytest

from repro.workloads import available, temporary_workload
from repro.workloads.base import WorkloadEngine
from repro.workloads.conformance import (
    CONSTANT_MEMORY_BOUND,
    conformance_config,
    conformance_keys,
    measure_stream_memory,
    run_conformance,
)
from repro.workloads.factory import resolved_workload_key

KEYS = conformance_keys()


@functools.lru_cache(maxsize=None)
def report_for(key):
    return run_conformance(key)


def test_battery_covers_every_registered_workload():
    assert KEYS == available()
    assert len(KEYS) == len(set(KEYS))


@pytest.mark.parametrize("key", KEYS)
def test_registered_workload_passes_battery(key):
    report = report_for(key)
    assert report.passed, f"{key} failed: {report.failures}"
    assert set(report.checks) == {
        "smoke",
        "seed_stable",
        "round_trip",
        "constant_memory",
    }
    assert all(report.checks.values()), report.checks


@pytest.mark.parametrize("key", KEYS)
def test_conformance_config_selects_the_requested_workload(key):
    config = conformance_config(key)
    assert resolved_workload_key(config) == key


@pytest.mark.parametrize("key", KEYS)
def test_report_serialises(key):
    payload = report_for(key).as_dict()
    assert payload["key"] == key
    assert payload["passed"] is True
    assert isinstance(payload["memory_delta"], int)


class _HoardingStream:
    """Anti-conformant: keeps every request it ever served."""

    def __init__(self, rng, mean):
        self.rng = rng
        self.mean = mean
        self.hoard = []

    def next_delay(self, now):
        return self.rng.exponential(self.mean)

    def next_item(self, now):
        item = int(self.rng.integers(0, 100))
        self.hoard.append(bytes(256))  # O(requests) state: the violation
        return item


class _HoardingWorkload(WorkloadEngine):
    key = "hoarding"
    PARAM_DEFAULTS = {}

    def bind(self, index, rng):
        return _HoardingStream(rng, self.config.think_time_mean)


def test_constant_memory_check_has_teeth():
    with temporary_workload("hoarding", _HoardingWorkload):
        config = conformance_config("hoarding")
        delta = measure_stream_memory(config)
    assert delta >= CONSTANT_MEMORY_BOUND
