"""Protocol-level tests of the mobile host.

A tiny world of stationary clients lets each COCA/GroCoCa message flow be
exercised and asserted in isolation: searches, replies, retrieves,
timeouts, signature exchange, admission control and validation.
"""

import math

import numpy as np
import pytest

from repro.cache import CacheEntry
from repro.core.client import MobileHost
from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Metrics, RequestOutcome
from repro.core.server import MobileSupportStation
from repro.core.tcg import TCGManager
from repro.data.server_db import ServerDatabase
from repro.data.workload import AccessPattern
from repro.mobility import MobilityField, StationaryTrajectory
from repro.net import MessageSizes, P2PNetwork, PowerLedger, ServerChannel
from repro.sim import Environment
from repro.signatures import SignatureScheme


class World:
    """A hand-wired simulation over stationary hosts."""

    def __init__(self, positions, scheme=CachingScheme.GC, **overrides):
        n = len(positions)
        settings = dict(
            scheme=scheme,
            n_clients=n,
            n_data=100,
            access_range=50,
            cache_size=5,
            think_time_mean=1e9,  # the request loop never fires on its own
            ndp_enabled=False,
            warmup_min_time=0.0,
            hop_dist=2,
            tran_range=50.0,
        )
        settings.update(overrides)
        self.config = SimulationConfig(**settings)
        self.env = Environment()
        self.field = MobilityField([StationaryTrajectory(p) for p in positions])
        self.ledger = PowerLedger(n)
        self.network = P2PNetwork(
            self.env,
            self.field,
            self.config.bw_p2p,
            self.config.tran_range,
            self.ledger,
        )
        self.channel = ServerChannel(
            self.env, self.config.bw_downlink, self.config.bw_uplink
        )
        self.database = ServerDatabase(
            self.env, np.random.default_rng(0), self.config.n_data
        )
        self.tcg = None
        self.signature_scheme = None
        if scheme is CachingScheme.GC:
            self.tcg = TCGManager(n, self.config.n_data, 100.0, 0.2, 0.5)
            self.signature_scheme = SignatureScheme(
                np.random.default_rng(1), 2048, 2
            )
        self.server = MobileSupportStation(
            self.env, self.config, self.database, tcg=self.tcg
        )
        self.metrics = Metrics(scheme.value)
        self.metrics.start_recording(0.0, self.ledger, n)
        sizes = MessageSizes(data=self.config.data_size)
        self.clients = [
            MobileHost(
                index,
                self.env,
                self.config,
                self.network,
                self.channel,
                self.server,
                AccessPattern(
                    np.random.default_rng(2), self.config.n_data, 50, 0.5, 0
                ),
                self.metrics,
                np.random.default_rng(3 + index),
                sizes,
                signature_scheme=self.signature_scheme,
            )
            for index in range(n)
        ]

    def give_item(self, client_index, item, expiry=math.inf):
        """Plant a valid cached copy at a client."""
        client = self.clients[client_index]
        entry = CacheEntry(item=item, expiry=expiry, retrieve_time=0.0)
        client._insert(entry)

    def befriend(self, a, b):
        """Make two GC clients mutual TCG members with known signatures."""
        first, second = self.clients[a], self.clients[b]
        first.signatures.members.add(b)
        second.signatures.members.add(a)
        first.signatures.merge_member_signature(
            b, second.signatures.own.signature().bits
        )
        second.signatures.merge_member_signature(
            a, first.signatures.own.signature().bits
        )

    def access(self, client_index, item):
        """Drive one access to completion; returns sim duration."""
        start = self.env.now
        self.env.process(self.clients[client_index].access_item(item))
        self.env.run(until=self.env.now + 30.0)
        return self.env.now - start

    def outcome_counts(self):
        return {o.name: c for o, c in self.metrics.outcomes.items() if c}


NEAR = [(0.0, 0.0), (30.0, 0.0)]
CHAIN = [(0.0, 0.0), (40.0, 0.0), (80.0, 0.0)]  # 0-1-2, 0 cannot hear 2


def test_local_hit_is_instant():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(0, item=7)
    world.access(0, 7)
    assert world.metrics.outcomes[RequestOutcome.LOCAL_HIT] == 1
    assert world.metrics.latency.mean == 0.0


def test_global_hit_one_hop():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(1, item=7)
    world.access(0, 7)
    assert world.metrics.outcomes[RequestOutcome.GLOBAL_HIT] == 1
    assert 7 in world.clients[0].cache  # admitted (cache not full)
    assert world.metrics.latency.mean > 0.0


def test_global_hit_two_hops_through_relay():
    world = World(CHAIN, scheme=CachingScheme.CC, hop_dist=2)
    world.give_item(2, item=9)
    world.access(0, 9)
    assert world.metrics.outcomes[RequestOutcome.GLOBAL_HIT] == 1


def test_hop_limit_blocks_distant_peer():
    world = World(CHAIN, scheme=CachingScheme.CC, hop_dist=1)
    world.give_item(2, item=9)
    world.access(0, 9)
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1


def test_no_cacher_falls_back_to_server_after_timeout():
    world = World(NEAR, scheme=CachingScheme.CC)
    duration = world.access(0, 3)
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1
    # The search timeout was paid before the server path.
    assert duration >= world.clients[0].timeout.initial
    assert 3 in world.clients[0].cache


def test_expired_peer_copy_not_served():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(1, item=7, expiry=0.5)
    world.env.run(until=1.0)  # let the copy expire
    world.access(0, 7)
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1


def test_reply_timeout_adapts():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(1, item=7)
    world.access(0, 7)
    assert world.clients[0].timeout.sample_count == 1


def test_admission_rejects_tcg_supply_when_full():
    world = World(NEAR, scheme=CachingScheme.GC, cache_size=3)
    for item in (1, 2, 3):
        world.give_item(0, item)
    world.give_item(1, item=7)
    world.befriend(0, 1)
    world.access(0, 7)
    assert world.metrics.outcomes[RequestOutcome.GLOBAL_HIT] == 1
    assert 7 not in world.clients[0].cache  # readily available at the member
    assert len(world.clients[0].cache) == 3


def test_admission_caches_non_member_supply_when_full():
    world = World(NEAR, scheme=CachingScheme.GC, cache_size=3)
    for item in (1, 2, 3):
        world.give_item(0, item)
    world.give_item(1, item=7)
    # 1 caches 7 but is NOT a TCG member of 0; still searched (filter off).
    world.config.signature_filtering = False
    world.access(0, 7)
    assert world.metrics.outcomes[RequestOutcome.GLOBAL_HIT] == 1
    assert 7 in world.clients[0].cache
    assert len(world.clients[0].cache) == 3  # someone was replaced


def test_gc_filter_bypasses_unknown_items():
    world = World(NEAR, scheme=CachingScheme.GC)
    world.befriend(0, 1)
    world.access(0, 42)  # no member caches 42
    assert world.metrics.bypassed_searches == 1
    assert world.metrics.peer_searches == 0
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1


def test_gc_filter_allows_member_cached_items():
    world = World(NEAR, scheme=CachingScheme.GC)
    world.give_item(1, item=7)
    world.befriend(0, 1)
    world.access(0, 7)
    assert world.metrics.peer_searches == 1
    assert world.metrics.outcomes[RequestOutcome.GLOBAL_HIT] == 1
    assert world.metrics.global_hits_tcg == 1


def test_serving_tcg_member_touches_the_copy():
    world = World(NEAR, scheme=CachingScheme.GC)
    world.give_item(1, item=7)
    world.give_item(1, item=8)  # 8 is now MRU at client 1
    world.befriend(0, 1)
    world.access(0, 7)
    # Serving member 0 refreshed item 7: it must now be the MRU.
    assert world.clients[1].cache.items()[-1] == 7


def test_serving_non_member_does_not_touch():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(1, item=7)
    world.give_item(1, item=8)
    world.access(0, 7)
    assert world.clients[1].cache.items()[-1] == 8  # order unchanged


def test_piggybacked_signature_update_reaches_member():
    world = World(NEAR, scheme=CachingScheme.GC)
    world.befriend(0, 1)
    world.give_item(0, item=5)  # sets pending insertion positions
    world.config.signature_filtering = False
    world.access(0, 42)  # broadcast carries the piggyback
    scheme = world.signature_scheme
    assert world.clients[1].signatures.peer.matches_positions(scheme.positions(5))


def test_sig_request_reply_roundtrip():
    world = World(NEAR, scheme=CachingScheme.GC)
    client = world.clients[0]
    world.give_item(1, item=7)
    client.signatures.members.add(1)
    client.signatures.outstanding.add(1)
    world.env.process(client._send_sig_request(1))
    world.env.run(until=5.0)
    assert client.signatures.outstanding == set()
    assert client.signatures.likely_cached_by_members(7)
    assert world.ledger.total("signature") > 0


def test_broadcast_sig_request_scoped_to_members():
    world = World([(0.0, 0.0), (30.0, 0.0), (30.0, 20.0)], scheme=CachingScheme.GC)
    requester = world.clients[0]
    world.give_item(1, item=7)
    world.give_item(2, item=8)
    requester.signatures.members.add(1)
    requester.signatures.outstanding.add(1)
    world.env.process(requester._send_sig_request(-1, members={1}))
    world.env.run(until=5.0)
    # Only member 1's signature arrived; 2 dropped the request.
    assert requester.signatures.likely_cached_by_members(7)
    assert not requester.signatures.likely_cached_by_members(8)


def test_validation_approved_copy_counts_as_local_hit():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(0, item=7, expiry=1.0)
    world.env.run(until=2.0)
    world.access(0, 7)
    assert world.metrics.outcomes[RequestOutcome.LOCAL_HIT] == 1
    assert world.metrics.validations == 1
    assert world.metrics.validation_refreshes == 0
    # The approved copy keeps its retrieve time but gets a fresh expiry.
    assert world.clients[0].cache.get(7).is_valid(world.env.now)


def test_validation_refreshes_stale_copy():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(0, item=7, expiry=1.0)
    world.env.run(until=2.0)
    world.database.apply_update(7)
    world.access(0, 7)
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1
    assert world.metrics.validation_refreshes == 1
    assert world.clients[0].cache.get(7).version == 1


def test_flood_deduplication_bounds_rebroadcasts():
    # A clique of four: every REQUEST would be rebroadcast by every peer
    # once at most, despite arriving multiple times.
    square = [(0.0, 0.0), (30.0, 0.0), (0.0, 30.0), (30.0, 30.0)]
    world = World(square, scheme=CachingScheme.CC, hop_dist=3)
    world.access(0, 3)  # nobody caches item 3
    # 1 original + at most one forward per other client.
    assert world.network.broadcasts <= 4


def test_retrieve_race_falls_back_to_server():
    world = World(NEAR, scheme=CachingScheme.CC)
    world.give_item(1, item=7)

    # Evict the copy at client 1 the instant it replies.
    original_send_reply = world.clients[1]._send_reply

    def evil_send_reply(request, entry):
        yield from original_send_reply(request, entry)
        if 7 in world.clients[1].cache:
            world.clients[1].cache.evict(7)

    world.clients[1]._send_reply = evil_send_reply
    world.access(0, 7)
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1


def test_lc_client_requires_no_signature_scheme():
    world = World(NEAR, scheme=CachingScheme.LC)
    assert world.clients[0].signatures is None
    world.access(0, 3)
    assert world.metrics.outcomes[RequestOutcome.SERVER] == 1
    assert world.network.broadcasts == 0


def test_gc_client_without_signature_scheme_rejected():
    world = World(NEAR, scheme=CachingScheme.CC)
    with pytest.raises(ValueError):
        MobileHost(
            0,
            world.env,
            world.config.with_scheme(CachingScheme.GC),
            world.network,
            world.channel,
            world.server,
            AccessPattern(np.random.default_rng(0), 100, 50, 0.5, 0),
            world.metrics,
            np.random.default_rng(0),
            MessageSizes(),
            signature_scheme=None,
        )
