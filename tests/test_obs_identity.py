"""Bit-identity: observation is read-only.

Two pinned properties:

* trace **off** — the instrumented code paths collapse to dormant
  ``is None`` branches, so every run still matches the committed golden
  fixtures byte for byte (the fixtures are NOT re-recorded here);
* trace **on** — an attached observer changes no :class:`Results` field;
  with the sampler disabled even the kernel event count is untouched.
"""

import json
from pathlib import Path

import pytest

from repro.check import golden
from repro.core.simulation import run_simulation
from repro.obs import Observer

FIXTURES = Path(__file__).parent / "golden"


def _fixture(name):
    return json.loads((FIXTURES / f"{name}.json").read_text(encoding="utf-8"))


@pytest.mark.parametrize("name", sorted(golden.GOLDEN_CASES))
def test_untraced_runs_match_committed_goldens(name):
    fixture = _fixture(name)
    results = run_simulation(golden.GOLDEN_CASES[name])
    diffs = golden.diff_fixture(
        golden.fixture_results(fixture), golden.results_to_dict(results)
    )
    assert diffs == [], "\n".join(diffs)


@pytest.mark.parametrize("name", sorted(golden.GOLDEN_CASES))
def test_tracer_alone_is_invisible_even_to_the_profiler(name):
    """sample_period=None: no sampler process, no extra kernel events —
    the full fixture payload, profile event counts included, matches."""
    fixture = _fixture(name)
    observer = Observer(sample_period=None)
    results = run_simulation(golden.GOLDEN_CASES[name], observer=observer)
    diffs = golden.diff_fixture(
        golden.fixture_results(fixture), golden.results_to_dict(results)
    )
    assert diffs == [], "\n".join(diffs)
    assert observer.tracer.events, "the tracer recorded nothing"


@pytest.mark.parametrize("name", sorted(golden.GOLDEN_CASES))
def test_sampled_runs_change_no_results_field(name):
    """With the sampler on, its timer pops move the kernel event count
    (profile only); every Results field still matches the fixture."""
    fixture = _fixture(name)
    observer = Observer(sample_period=3.0)
    results = run_simulation(golden.GOLDEN_CASES[name], observer=observer)
    expected = dict(fixture["results"])
    actual = golden.results_to_dict(results)
    expected.pop("profile", None)
    profile = actual.pop("profile", None)
    diffs = golden.diff_fixture(expected, actual)
    assert diffs == [], "\n".join(diffs)
    # The sampler's own events are the *only* profile drift: the
    # per-subsystem work counters still match exactly.
    semantic = golden.fixture_results(fixture)["profile"]["counters"]
    assert profile["counters"] == semantic
    assert observer.sampler is not None
    assert len(observer.sampler.series("t")) > 0
