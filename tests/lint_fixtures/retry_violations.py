"""Seeded retry-rule violations (simlint test fixture, never imported)."""


def unbounded_retry(env, send):
    backoff = 0.1
    while True:  # MARK:unbounded-retry
        if send():
            return True
        yield env.timeout(backoff)
        backoff *= 2.0


def unbounded_retry_additive(env, send):
    delay = 0.1
    while 1:  # MARK:unbounded-retry-additive
        if send():
            return True
        yield env.timeout(delay)
        delay = delay + 0.5


def bounded_by_attempts(env, send, retry_limit):
    # ok: attempt bound checked inside the loop
    backoff = 0.1
    attempt = 0
    while True:
        if send():
            return True
        attempt += 1
        if attempt > retry_limit:
            return False
        yield env.timeout(backoff)
        backoff *= 2.0


def bounded_by_deadline(env, send, deadline):
    # ok: deadline consulted against the simulated clock
    backoff = 0.1
    while True:
        if send():
            return True
        if env.now >= deadline:
            return False
        yield env.timeout(backoff)
        backoff *= 2.0


def bounded_by_range(env, send, retry_limit):
    # ok: the idiomatic bounded retry loop — not a While at all
    backoff = 0.1
    for _attempt in range(1 + retry_limit):
        if send():
            return True
        yield env.timeout(backoff)
        backoff *= 2.0
    return False


def plain_poll_loop(env, ready):
    # ok: no backoff growth — a plain wait loop, not a retry loop
    while True:
        if ready():
            return
        yield env.timeout(1.0)
