"""Unparseable fixture (simlint test fixture, never imported)."""

def truncated(:
