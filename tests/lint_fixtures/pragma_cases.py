"""Seeded pragma-layer cases (simlint test fixture, never imported)."""

import time


def suppressed_wall_clock():
    return time.time()  # simlint: allow[no-wall-clock] reason=fixture exercises a valid suppression


def pragma_without_reason():
    return time.time()  # simlint: allow[no-wall-clock] MARK:pragma-missing-reason


def pragma_unknown_rule():
    return 1  # simlint: allow[no-such-rule] reason=MARK:pragma-unknown-rule


def pragma_unused():
    return 2  # simlint: allow[no-stdlib-random] reason=MARK:pragma-unused
