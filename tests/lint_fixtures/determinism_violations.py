"""Seeded determinism-rule violations (simlint test fixture, never imported)."""

import random
import time
from datetime import datetime

import numpy as np


def stdlib_draw(items):
    return random.choice(items)  # MARK:no-stdlib-random


def direct_generator():
    return np.random.default_rng(7)  # MARK:no-direct-rng


def wall_clock_delay():
    return time.time()  # MARK:no-wall-clock


def wall_clock_date():
    return datetime.now()  # MARK:no-wall-clock-datetime


def schedule_from_set(hosts):
    pending = {host for host in hosts}
    order = []
    for host in pending:  # MARK:set-iteration-order
        order.append(host)
    return order
