"""Seeded DES-kernel-rule violations (simlint test fixture, never imported)."""

import time


def bad_yield_process(env):
    yield env.timeout(1.0)
    yield 42  # MARK:kernel-yield-non-event


def blocking_process(env):
    yield env.timeout(1.0)
    time.sleep(0.5)  # MARK:kernel-blocking-call


def stale_now_process(env):
    started = env.now
    yield env.timeout(5.0)
    yield env.timeout(started)  # MARK:kernel-stale-now


def elapsed_time_is_fine(env):
    started = env.now
    yield env.timeout(5.0)
    return env.now - started
