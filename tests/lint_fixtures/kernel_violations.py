"""Seeded DES-kernel-rule violations (simlint test fixture, never imported)."""

import time


def bad_yield_process(env):
    yield env.timeout(1.0)
    yield 42  # MARK:kernel-yield-non-event


def blocking_process(env):
    yield env.timeout(1.0)
    time.sleep(0.5)  # MARK:kernel-blocking-call


def stale_now_process(env):
    started = env.now
    yield env.timeout(5.0)
    yield env.timeout(started)  # MARK:kernel-stale-now


def elapsed_time_is_fine(env):
    started = env.now
    yield env.timeout(5.0)
    return env.now - started


class FakeEnvironment:
    """A scheduler: its dispatch loop must not allocate per event."""

    def run(self, until=None):
        while self.peek() <= until:
            batch = [self.pop()]  # MARK:kernel-hot-alloc-display
            extras = list(self.drain())  # MARK:kernel-hot-alloc-call
            seen = {e.seq for e in batch}  # MARK:kernel-hot-alloc-comp
            for event in batch + extras:
                event.process(seen)
        hoisted = []  # outside any loop: legal
        return hoisted

    def step(self):
        for event in self.pop_batch():
            event.callbacks = []  # simlint: allow[kernel-hot-alloc] reason=fixture shows the pragma escape

    def not_dispatch(self):
        # Same shapes outside run/step: the rule must stay quiet.
        while True:
            return [dict(a=1) for _ in range(3)]
