"""Seeded policy-rule violations (simlint test fixture, never imported)."""


def wires_admission_directly(config):
    return AdmissionControl(config.admission_control)  # MARK:policy-direct-admission


def wires_replacement_directly(cache):
    return LRUMinReplacement(cache, 10)  # MARK:policy-direct-replacement


def wires_through_attribute(module, cache):
    return module.PopularityRankReplacement(cache)  # MARK:policy-direct-attribute


def resolves_through_registry(config, cache):
    # ok: the sanctioned path — the factory resolves the registered builder
    from repro.policies.factory import build_replacement

    return build_replacement(config, cache)


def resolves_by_key(namespace, key):
    # ok: explicit registry resolution is the other sanctioned path
    from repro.policies import registry

    return registry.resolve(namespace, key)
