"""Seeded config-contract violations (simlint test fixture, never imported)."""

from repro.core.config import SimulationConfig

TINY_PROFILE = {
    "n_clients": 4,
    "cache_sizes": 8,  # MARK:unknown-config-field-profile
}


def build_config():
    return SimulationConfig(n_client=4)  # MARK:unknown-config-field-kwarg


def tweak_config(config):
    return config.replace(chache_size=16)  # MARK:unknown-config-field-replace


def read_series(table):
    return table.series("GC", "gch_ratioo")  # MARK:unknown-results-field
