"""Seeded obs-raw-time violations for the simlint rule tests.

This module is a lint fixture, not runnable code: the receivers are
stand-ins for repro.obs tracer/sampler objects.
"""

import time
from datetime import datetime


class _FakeEnv:
    now = 0.0


env = _FakeEnv()
tracer = None
sampler = None


def wall_clock_into_tracer():
    tracer.instant("tick", at=time.time())  # MARK:obs-raw-time-wall-clock


def wall_clock_into_sampler():
    sampler.sample(timestamp=datetime.now())  # MARK:obs-raw-time-datetime


def wall_clock_positional(self_tracer):
    self_tracer.begin("span", time.perf_counter())  # MARK:obs-raw-time-positional


def raw_timestamp_keyword():
    tracer.begin("span", ts=123.4)  # MARK:obs-raw-time-keyword


def derived_timestamp_keyword():
    tracer.instant("tick", when=env.now + 1.0)  # MARK:obs-raw-time-derived


def sim_time_is_fine():
    tracer.instant("tick", at=env.now)  # ok: env.now is the kernel clock


def bare_now_is_fine(now):
    tracer.instant("tick", t=now)  # ok: a bare `now` local carries env.now


def plain_args_are_fine():
    tracer.begin("span", host=3, item=17)  # ok: no timestamp keywords
