"""The kernel_violating hazards, excused with pragmas."""

import time


def slow_total(items) -> int:
    time.sleep(0.001)  # simlint: allow[kernel-transitive-hazard] reason=test stub, replaced by a fake clock in production
    total = 0
    for item in items:
        total += item
    return total


def drain(bucket) -> list:
    order = []
    for member in bucket:  # simlint: allow[kernel-transitive-hazard] reason=order-insensitive accumulation, result is summed
        order.append(member)
    return order


def process(env):
    slow_total([1, 2])
    drain({1, 2, 3})
    yield env.timeout(1)
