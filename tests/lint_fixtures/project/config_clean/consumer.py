"""Reads both fields."""


def report(res) -> int:
    return res.used_metric + res.dead_knob
