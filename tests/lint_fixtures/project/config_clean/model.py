"""A Results class whose fields are all read and documented."""


class Results:
    dead_knob: int = 0
    used_metric: int = 1
