"""Reads exactly one of the two fields."""


def report(res) -> int:
    return res.used_metric
