"""A Results class with a dead, undocumented field."""


class Results:
    dead_knob: int = 0
    used_metric: int = 1
