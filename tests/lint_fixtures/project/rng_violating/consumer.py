"""A draw whose handle provably is not a RandomStreams stream."""


class FakeRng:
    """Stand-in 'generator' that returns a constant."""

    def random(self) -> float:
        return 0.5


def make_rng() -> FakeRng:
    return FakeRng()


def draw_one() -> float:
    rng = make_rng()
    return rng.random()
