"""Shared stream, excused in both owners."""

from streams import RandomStreams

stream_pool = RandomStreams(1)
rng = stream_pool.stream("shared-name")  # simlint: allow[rng-shared-stream] reason=deliberate cross-layer coupling for a doc example
