"""The rng_violating case, excused with a pragma."""


class FakeRng:
    def random(self) -> float:
        return 0.5


def make_rng() -> FakeRng:
    return FakeRng()


def draw_one() -> float:
    rng = make_rng()
    return rng.random()  # simlint: allow[rng-provenance] reason=documentation stand-in, never runs in a simulation
