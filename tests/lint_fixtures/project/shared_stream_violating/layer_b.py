"""Second module deriving the same stream name."""

from streams import RandomStreams

stream_pool = RandomStreams(1)
rng = stream_pool.stream("shared-name")
