"""First module deriving the shared stream name."""

from streams import RandomStreams

stream_pool = RandomStreams(1)
rng = stream_pool.stream("shared-name")
