"""Hazards hidden in helpers the kernel can reach."""

import time


def slow_total(items) -> int:
    time.sleep(0.001)
    total = 0
    for item in items:
        total += item
    return total


def drain(bucket) -> list:
    order = []
    for member in bucket:
        order.append(member)
    return order


def process(env):
    slow_total([1, 2])
    drain({1, 2, 3})
    yield env.timeout(1)
