"""An undocumented key, excused with a pragma."""

from registry import register_value

register_value("thing", "alpha", object())
register_value("thing", "mystery", object())  # simlint: allow[registry-consistency] reason=internal key, deliberately kept out of the operator docs
