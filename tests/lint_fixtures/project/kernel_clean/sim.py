"""Helpers reachable from the kernel, hazard-free."""


def total_of(items) -> int:
    total = 0
    for item in items:
        total += item
    return total


def process(env):
    total_of([1, 2])
    yield env.timeout(1)
