"""Builtin registrations the loader reaches."""

from registry import register_value

register_value("thing", "alpha", object())
register_value("thing", "mystery", object())
