"""A registration the loader never imports."""

from registry import register_value

register_value("thing", "orphaned", object())
