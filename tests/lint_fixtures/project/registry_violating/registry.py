"""Miniature policy registry."""

NAMESPACES = ("thing",)

_REGISTRY = {}


def register_value(namespace, key, value):
    _REGISTRY.setdefault(namespace, {})[key] = value


def _load_builtins():
    import plugins  # noqa: F401
