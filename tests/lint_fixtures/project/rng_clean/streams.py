"""Stand-in for the sanctioned stream fan-out."""


class RandomStreams:
    def __init__(self, seed: int) -> None:
        self.seed = seed

    def stream(self, name: str) -> "RandomStreams":
        return self
