"""Handle derived from a named RandomStreams stream."""

from streams import RandomStreams


def draw_one() -> float:
    rng = RandomStreams(7).stream("consumer-draws")
    return rng.random()
