"""The dead field, excused with a pragma."""


class Results:
    dead_knob: int = 0  # simlint: allow[config-field-flow] reason=reserved for the next exporter revision
    used_metric: int = 1
