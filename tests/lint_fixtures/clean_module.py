"""A module simlint must pass untouched (fixture, never imported)."""

from typing import List


def deterministic_order(hosts: List[int]) -> List[int]:
    pending = sorted(set(hosts))
    return [host for host in pending]


def elapsed(env):
    started = env.now
    yield env.timeout(1.0)
    return env.now - started
