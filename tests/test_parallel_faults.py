"""Crash tolerance of the sweep harness (execute_runs retry/quarantine).

Covers the whole failure matrix: transient exceptions retried to success,
permanent failures quarantined (raising :class:`RunCrashed`, or returning
``None`` holes with ``salvage=True``), a killed worker process rebuilt and
its batch re-dispatched, and hung runs bounded by the per-run timeout.
"""

import pytest

from repro.core.simulation import run_simulation
from repro.experiments.parallel import (
    RunCrashed,
    RunSpec,
    execute_runs,
)
from tests import _crash_helpers
from tests.test_experiments_parallel import assert_results_identical, tiny_config


@pytest.fixture
def flag_file(tmp_path, monkeypatch):
    path = tmp_path / "tripped"
    monkeypatch.setenv("REPRO_TEST_FLAG", str(path))
    return path


def make_specs(n=2):
    return [
        RunSpec(config=tiny_config(seed=20 + i), label=f"s{i}") for i in range(n)
    ]


def test_attempts_must_be_positive():
    with pytest.raises(ValueError):
        execute_runs([], attempts=0)


def test_serial_transient_failure_is_retried_to_success(flag_file):
    specs = make_specs(2)
    labels = []
    results = execute_runs(
        specs, jobs=1, runner=_crash_helpers.raise_once_runner,
        progress=labels.append,
    )
    for got, spec in zip(results, specs):
        assert_results_identical(got, run_simulation(spec.config))
    assert any("[retry 2]" in label for label in labels)
    assert not any("[quarantined" in label for label in labels)


def test_serial_permanent_failure_raises_run_crashed():
    specs = make_specs(1)
    with pytest.raises(RunCrashed) as excinfo:
        execute_runs(
            specs, jobs=1, runner=_crash_helpers.always_raise_runner, attempts=2
        )
    (failure,) = excinfo.value.failures
    assert failure.index == 0
    assert failure.label == "s0"
    assert failure.attempts == 2
    assert "permanent failure" in failure.error
    assert "s0" in str(excinfo.value)


def test_salvage_returns_partial_results():
    # Seeds 20 (even, fine) and 21 (odd, cursed).
    specs = make_specs(2)
    failures, labels = [], []
    results = execute_runs(
        specs,
        jobs=1,
        runner=_crash_helpers.fail_odd_seed_runner,
        salvage=True,
        failures_out=failures,
        progress=labels.append,
    )
    assert results[0] is not None and results[1] is None
    assert_results_identical(results[0], run_simulation(specs[0].config))
    (failure,) = failures
    assert failure.index == 1 and failure.attempts == 2
    assert any("[quarantined" in label for label in labels)


def test_pool_survives_a_killed_worker(flag_file):
    # One worker os._exit()s mid-batch; the pool is rebuilt, the innocent
    # future is re-dispatched without being charged an attempt, and the
    # sweep still completes with reference-identical results.
    specs = make_specs(2)
    results = execute_runs(
        specs, jobs=2, runner=_crash_helpers.crash_once_runner, attempts=2
    )
    for got, spec in zip(results, specs):
        assert got is not None
        assert_results_identical(got, run_simulation(spec.config))


def test_pool_timeout_quarantines_hung_runs():
    specs = make_specs(2)
    failures = []
    results = execute_runs(
        specs,
        jobs=2,
        runner=_crash_helpers.slow_runner,
        timeout=1.0,
        attempts=1,
        salvage=True,
        failures_out=failures,
    )
    assert results == [None, None]
    assert len(failures) == 2
    assert all("timed out after 1.0s" in failure.error for failure in failures)
