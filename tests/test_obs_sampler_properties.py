"""Hypothesis properties of the time-series sampler.

* Observation frequency is not an experimental parameter: for ANY sample
  period the traced event stream and the run's :class:`Results` are
  identical to the unsampled run.
* The windowed series integrates back to the aggregate: the window deltas
  sum exactly to the final counters, and the ratio-weighted reconstruction
  of the aggregate hit ratio agrees within float tolerance.
"""

import functools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.simulation import run_simulation
from repro.obs import Observer

_CONFIG = SimulationConfig(
    scheme=CachingScheme.GC,
    seed=19,
    n_clients=8,
    n_data=200,
    access_range=40,
    cache_size=8,
    group_size=4,
    measure_requests=8,
    warmup_min_time=30.0,
    warmup_max_time=60.0,
    ndp_enabled=False,
)

periods = st.floats(
    min_value=0.3, max_value=60.0, allow_nan=False, allow_infinity=False
)


def _event_key(event):
    return (
        event.kind,
        event.name,
        event.time,
        event.host,
        event.span,
        event.parent,
        event.status,
        tuple(sorted(event.args.items())),
    )


@functools.lru_cache(maxsize=None)
def _sampled_run(period):
    observer = Observer(sample_period=period)
    results = run_simulation(_CONFIG, observer=observer)
    return observer, results


@functools.lru_cache(maxsize=1)
def _baseline():
    observer = Observer(sample_period=None)
    results = run_simulation(_CONFIG, observer=observer)
    return [_event_key(e) for e in observer.tracer.events], results


@given(periods)
@settings(max_examples=10, deadline=None)
def test_sample_period_never_perturbs_the_run(period):
    baseline_events, baseline_results = _baseline()
    observer, results = _sampled_run(period)
    assert results == baseline_results
    assert [_event_key(e) for e in observer.tracer.events] == baseline_events


@given(periods)
@settings(max_examples=10, deadline=None)
def test_windowed_series_integrates_to_aggregate(period):
    observer, results = _sampled_run(period)
    sampler = observer.sampler
    assert sampler.finalized
    # Exact conservation: window deltas sum to the final counters.
    assert sum(sampler.series("win_requests")) == results.requests
    assert sum(sampler.series("win_local")) == results.local_hits
    assert sum(sampler.series("win_global")) == results.global_hits
    assert sum(sampler.series("win_server")) == results.server_requests
    assert sum(sampler.series("win_failures")) == results.failures
    # Ratio-weighted reconstruction of the aggregate local hit ratio.
    if results.requests:
        weighted = sum(
            ratio * win
            for ratio, win in zip(
                sampler.series("win_local_ratio"),
                sampler.series("win_requests"),
            )
        )
        reconstructed = 100.0 * weighted / results.requests
        assert math.isclose(reconstructed, results.lch_ratio, rel_tol=1e-9)
    # The cumulative columns end at the aggregate too.
    assert sampler.series("requests")[-1] == results.requests
    assert sampler.series("local_hits")[-1] == results.local_hits
