"""Tests for the broadcast schedule and the delivery-model systems."""


import numpy as np
import pytest

from repro.data.workload import build_access_patterns
from repro.delivery import (
    BroadcastSchedule,
    HybridSystem,
    ListeningPower,
    PushSystem,
    compare_delivery_models,
)
from repro.delivery.models import aggregate_popularity


def flat(n_items=10, item_bytes=1000, index_bytes=250, bw=8000.0, m=5):
    # item_time = 1 s, index_time = 0.25 s, segment = 5.25 s, 2 segments.
    return BroadcastSchedule(n_items, item_bytes, index_bytes, bw, m)


# -- schedule arithmetic ---------------------------------------------------------


def test_schedule_times():
    schedule = flat()
    assert schedule.item_time == pytest.approx(1.0)
    assert schedule.index_time == pytest.approx(0.25)
    assert schedule.segment_time == pytest.approx(5.25)
    assert schedule.segments == 2
    assert schedule.cycle_time == pytest.approx(10.5)


def test_item_slot_start():
    schedule = flat()
    assert schedule.item_slot_start(0, 0.0) == pytest.approx(0.25)
    assert schedule.item_slot_start(4, 0.0) == pytest.approx(4.25)
    assert schedule.item_slot_start(5, 0.0) == pytest.approx(5.5)  # segment 2
    with pytest.raises(IndexError):
        schedule.item_slot_start(10, 0.0)


def test_next_index_end():
    schedule = flat()
    assert schedule.next_index_end(0.0) == pytest.approx(0.25)
    # Mid-index: cannot decode it, wait for the next segment's index.
    assert schedule.next_index_end(0.1) == pytest.approx(5.5)
    assert schedule.next_index_end(1.0) == pytest.approx(5.5)
    assert schedule.next_index_end(5.25) == pytest.approx(5.5)


def test_tune_waits_for_index_then_item():
    schedule = flat()
    outcome = schedule.tune(3, 0.0)
    # index [0, .25], doze to slot at 3.25, receive until 4.25.
    assert outcome.latency == pytest.approx(4.25)
    assert outcome.active_time == pytest.approx(0.25 + 1.0)
    assert outcome.doze_time == pytest.approx(3.0)


def test_tune_wraps_to_next_cycle():
    schedule = flat()
    # At t=4.5 the next decodable index ends at 5.5; item 0's next slot is
    # in the following cycle at 10.75.
    outcome = schedule.tune(0, 4.5)
    assert outcome.latency == pytest.approx(10.75 + 1.0 - 4.5)
    assert outcome.doze_time == pytest.approx(10.75 - 5.5)


def test_tune_latency_bounded_by_cycle_plus_segment():
    schedule = flat()
    bound = schedule.cycle_time + schedule.segment_time + schedule.item_time
    rng = np.random.default_rng(0)
    for _ in range(200):
        item = int(rng.integers(0, 10))
        t = float(rng.uniform(0, 50))
        outcome = schedule.tune(item, t)
        assert 0 < outcome.latency <= bound
        assert outcome.active_time + outcome.doze_time <= outcome.latency + 1e-9


def test_expected_latency_matches_samples():
    schedule = flat()
    rng = np.random.default_rng(1)
    samples = [
        schedule.tune(int(rng.integers(0, 10)), float(rng.uniform(0, 42))).latency
        for _ in range(3000)
    ]
    assert np.mean(samples) == pytest.approx(schedule.expected_latency(), rel=0.1)


def test_schedule_validation():
    with pytest.raises(ValueError):
        BroadcastSchedule(0, 10, 10, 100.0, 1)
    with pytest.raises(ValueError):
        BroadcastSchedule(5, 0, 10, 100.0, 1)
    with pytest.raises(ValueError):
        BroadcastSchedule(5, 10, 10, 0.0, 1)
    with pytest.raises(ValueError):
        BroadcastSchedule(5, 10, 10, 100.0, 0)


def test_index_every_capped_at_disk_size():
    schedule = BroadcastSchedule(3, 1000, 250, 8000.0, index_every=50)
    assert schedule.index_every == 3
    assert schedule.segments == 1


# -- listening power ----------------------------------------------------------------


def test_listening_cost():
    power = ListeningPower(active_uw=1000.0, doze_uw=10.0)
    assert power.cost(2.0, 3.0) == pytest.approx(2030.0)
    with pytest.raises(ValueError):
        power.cost(-1.0, 0.0)


def test_doze_cheaper_than_active_default():
    power = ListeningPower()
    assert power.doze_uw < power.active_uw / 10


# -- aggregate popularity ------------------------------------------------------------


def test_aggregate_popularity_sums_to_one_and_ranks_hot_first():
    rng = np.random.default_rng(2)
    patterns = build_access_patterns(rng, [0, 0, 1, 1], 100, 20, 1.0)
    popularity = aggregate_popularity(patterns, 100)
    assert popularity.sum() == pytest.approx(1.0)
    hottest = int(np.argmax(popularity))
    starts = {pattern.item_for_rank(0) for pattern in patterns}
    assert hottest in starts  # a rank-0 item of some group is globally hottest


# -- systems ---------------------------------------------------------------------------


def test_push_system_runs_and_all_requests_from_air():
    results = PushSystem(
        n_clients=5, n_data=100, access_range=20, theta=0.5, seed=3
    ).run(requests_per_client=5)
    assert results.model == "push"
    assert results.requests >= 25
    assert results.pushed_fraction == 1.0
    assert results.server_requests == 0
    assert results.access_latency > 0
    assert results.power_per_request > 0


def test_hybrid_system_splits_hot_and_cold():
    results = HybridSystem(
        n_clients=5,
        n_data=100,
        access_range=50,
        theta=0.5,
        hot_items=20,
        seed=3,
    ).run(requests_per_client=10)
    assert 0.0 < results.pushed_fraction < 1.0
    assert results.server_requests > 0


def test_hybrid_all_hot_equals_pure_push_routing():
    results = HybridSystem(
        n_clients=4, n_data=50, access_range=10, theta=0.5, hot_items=50, seed=4
    ).run(requests_per_client=5)
    assert results.pushed_fraction == 1.0


def test_hybrid_validation():
    with pytest.raises(ValueError):
        HybridSystem(2, 50, 10, 0.5, hot_items=0)


def test_compare_delivery_models_section1_shapes():
    out = compare_delivery_models(
        n_clients=8,
        n_data=400,
        access_range=80,
        hot_items=80,
        requests_per_client=8,
        seed=5,
    )
    assert set(out) == {"pull", "push", "hybrid"}
    pull, push, hybrid = out["pull"], out["push"], out["hybrid"]
    # The paper's Section I: push pays cycle-bound latency and doze energy.
    assert push.access_latency > 10 * pull.access_latency
    assert push.power_per_request > pull.power_per_request
    # Hybrid sits between the two on latency.
    assert pull.access_latency < hybrid.access_latency < push.access_latency
