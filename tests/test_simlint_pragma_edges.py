"""Pragma suppression-window edge cases.

The window is the anchor node's full line span — multiline statements
are suppressible from any of their lines, decorated defs from the
decorator lines — plus ``allow-file`` anywhere (including line 1).
"""

import io
from pathlib import Path

from repro.analysis.engine import ModuleSource, lint_source
from repro.analysis.runner import run_lint


def lint_text(tmp_path, text):
    path = tmp_path / "mod.py"
    path.write_text(text)
    return lint_source(ModuleSource.from_path(path))


# -- multiline statements -----------------------------------------------------


def test_pragma_on_last_line_of_multiline_statement(tmp_path):
    found = lint_text(
        tmp_path,
        "import time\n"
        "T = time.time(\n"
        ")  # simlint: allow[no-wall-clock] reason=profiling only\n",
    )
    assert found == []


def test_pragma_on_first_line_of_multiline_statement(tmp_path):
    found = lint_text(
        tmp_path,
        "import time\n"
        "T = time.time(  # simlint: allow[no-wall-clock] reason=profiling only\n"
        ")\n",
    )
    assert found == []


def test_pragma_outside_the_statement_does_not_suppress(tmp_path):
    found = lint_text(
        tmp_path,
        "import time\n"
        "# simlint: allow[no-wall-clock] reason=wrong line\n"
        "T = time.time()\n",
    )
    rules = {v.rule for v in found}
    assert "no-wall-clock" in rules
    assert "pragma-unused" in rules


# -- first line of the file ---------------------------------------------------


def test_allow_file_pragma_on_line_one(tmp_path):
    found = lint_text(
        tmp_path,
        "# simlint: allow-file[no-wall-clock] reason=profiling module\n"
        "import time\n"
        "T = time.time()\n"
        "U = time.monotonic()\n",
    )
    assert found == []


def test_violation_on_line_one_is_suppressible(tmp_path):
    found = lint_text(
        tmp_path,
        "T = __import__('time').time()"
        "  # simlint: allow[no-wall-clock] reason=one-liner\n",
    )
    assert all(v.rule != "no-wall-clock" for v in found)


# -- decorated defs (project-scope anchor includes decorator lines) -----------


def write_registry_project(tmp_path, pragma_line):
    (tmp_path / "registry.py").write_text(
        'NAMESPACES = ("thing",)\n'
        "_REGISTRY = {}\n"
        "def register(namespace, key):\n"
        "    def wrap(fn):\n"
        "        _REGISTRY.setdefault(namespace, {})[key] = fn\n"
        "        return fn\n"
        "    return wrap\n"
        "def _load_builtins():\n"
        "    import plugins  # noqa: F401\n"
    )
    docs = tmp_path / "docs"
    docs.mkdir(exist_ok=True)
    (docs / "POLICIES.md").write_text(
        "| Key | Namespace |\n|-----|-----------|\n| `alpha` | thing |\n"
    )
    (tmp_path / "plugins.py").write_text(
        "from registry import register\n"
        "\n"
        '@register("thing", "alpha")\n'
        "def build_alpha():\n"
        "    return None\n"
        "\n"
        f'@register("thing", "mystery"){pragma_line}\n'
        "def build_mystery():\n"
        "    return None\n"
    )


def project_lint(tmp_path):
    stream = io.StringIO()
    code = run_lint(
        [tmp_path],
        baseline_path=None,
        stream=stream,
        project=True,
        use_cache=False,
        project_root=tmp_path,
    )
    return code, stream.getvalue()


def test_decorated_def_finding_fires_without_pragma(tmp_path):
    write_registry_project(tmp_path, "")
    code, output = project_lint(tmp_path)
    assert code == 1
    assert "registry-consistency" in output
    assert "'mystery'" in output


def test_pragma_on_decorator_line_suppresses_def_anchored_finding(tmp_path):
    write_registry_project(
        tmp_path,
        "  # simlint: allow[registry-consistency] reason=internal key",
    )
    code, output = project_lint(tmp_path)
    assert code == 0, output
