"""Trace-contract suite: every traced run yields a reconcilable timeline.

The contract (see ``repro.obs.contract``): spans are balanced and nested,
instants sit inside their parent span, and the recorded span/instant
counts reconcile *exactly* with the run's :class:`Results` counters and
the :class:`RunProfile` work counters — across LC / CC / GC, several
seeds, and a fault-injected run.  A deliberately injected unbalanced-span
bug must make the checker fail loudly.
"""

import json
import os
from collections import Counter
from pathlib import Path

import pytest

from repro.core.client import MobileHost
from repro.core.config import CachingScheme, SimulationConfig
from repro.core.simulation import run_simulation
from repro.net.faults import CrashFaults, FaultPlan, LinkFaults
from repro.obs import (
    Observer,
    check_trace,
    derive_spans,
    load_chrome_trace_schema,
    run_traced,
    validate,
)
from repro.obs.export import chrome_trace_payload

#: Small enough that one traced run takes well under a second, large
#: enough that caches fill, searches fan out and TCGs form.
_BASE = dict(
    n_clients=8,
    n_data=200,
    access_range=40,
    cache_size=8,
    group_size=4,
    measure_requests=8,
    warmup_min_time=30.0,
    warmup_max_time=60.0,
    ndp_enabled=True,
)

_FAULT_PLAN = FaultPlan(
    p2p=LinkFaults(loss=0.15, burst_loss=0.3, burst_on=0.05, burst_off=0.5),
    uplink=LinkFaults(loss=0.08),
    downlink=LinkFaults(loss=0.08),
    crash=CrashFaults(rate=0.002, down_min=2.0, down_max=6.0),
)


def _config(scheme, seed, **overrides):
    return SimulationConfig(scheme=scheme, seed=seed, **{**_BASE, **overrides})


def _traced_run(config, sample_period=5.0):
    observer = Observer(sample_period=sample_period)
    results = run_simulation(config, observer=observer)
    return observer, results


SCHEMES = [CachingScheme.LC, CachingScheme.CC, CachingScheme.GC]
SEEDS = [11, 23, 47]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
def test_contract_holds_across_schemes_and_seeds(scheme, seed):
    observer, results = _traced_run(_config(scheme, seed))
    problems = check_trace(
        observer.tracer.events, results=results, profile=results.profile
    )
    assert problems == [], "\n".join(problems)
    assert observer.tracer.open_spans == 0


def test_contract_holds_under_fault_injection():
    config = _config(
        CachingScheme.GC,
        seed=7,
        faults=_FAULT_PLAN,
        search_retry_limit=1,
        retrieve_retry_limit=1,
    )
    observer, results = _traced_run(config)
    problems = check_trace(
        observer.tracer.events, results=results, profile=results.profile
    )
    assert problems == [], "\n".join(problems)
    # The fault machinery actually ran (the contract reconciled it).
    assert "fault_crashes" in results.profile.counters


def test_request_spans_reconcile_with_results_directly():
    """One explicit reconciliation, independent of the checker's wording."""
    observer, results = _traced_run(_config(CachingScheme.GC, seed=11))
    spans = derive_spans(observer.tracer.events)
    recorded = [
        s for s in spans if s.name == "request" and s.args.get("recorded")
    ]
    assert len(recorded) == results.requests
    by_status = Counter(s.status for s in recorded)
    assert by_status.get("local_hit", 0) == results.local_hits
    assert by_status.get("global_hit", 0) == results.global_hits
    assert by_status.get("server", 0) == results.server_requests
    assert by_status.get("failure", 0) == results.failures


def test_spans_are_balanced_after_finalize():
    observer, _results = _traced_run(_config(CachingScheme.CC, seed=23))
    assert observer.tracer.finished
    assert observer.tracer.open_spans == 0
    assert not any(s.status == "open" for s in derive_spans(observer.tracer.events))


def test_chrome_trace_validates_against_committed_schema():
    observer, _results = _traced_run(_config(CachingScheme.GC, seed=11))
    payload = json.loads(json.dumps(chrome_trace_payload(observer.tracer.events)))
    schema = load_chrome_trace_schema()
    assert validate(payload, schema) == []


def test_chrome_trace_validates_with_jsonschema_too():
    jsonschema = pytest.importorskip("jsonschema")
    observer, _results = _traced_run(_config(CachingScheme.GC, seed=11))
    payload = json.loads(json.dumps(chrome_trace_payload(observer.tracer.events)))
    jsonschema.validate(payload, load_chrome_trace_schema())


def test_injected_unbalanced_span_bug_fails_loudly(monkeypatch):
    """Dropping the search span's end call must trip the checker."""
    original = MobileHost._finish_search

    def buggy(self, sid, outcome):
        tracer, self._tracer = self._tracer, None
        try:
            original(self, sid, outcome)
        finally:
            self._tracer = tracer

    monkeypatch.setattr(MobileHost, "_finish_search", buggy)
    # CC searches on every cache miss, so the bug is certain to trigger.
    observer, results = _traced_run(_config(CachingScheme.CC, seed=11))
    problems = check_trace(
        observer.tracer.events, results=results, profile=results.profile
    )
    assert problems, "the injected unbalanced-span bug went undetected"
    assert any("search" in problem for problem in problems)


def test_sample_trace_bundle_exports(tmp_path):
    """Full bundle export; doubles as the CI sample-trace artifact."""
    artifact_root = os.environ.get("REPRO_TRACE_ARTIFACT_DIR")
    out = Path(artifact_root) if artifact_root else tmp_path
    results, paths = run_traced(
        _config(CachingScheme.GC, seed=11), out / "gc-sample"
    )
    for kind in ("jsonl", "chrome", "series", "manifest"):
        assert paths[kind].exists(), kind
    payload = json.loads(paths["chrome"].read_text(encoding="utf-8"))
    assert validate(payload, load_chrome_trace_schema()) == []
    manifest = json.loads(paths["manifest"].read_text(encoding="utf-8"))
    assert manifest["results"]["requests"] == results.requests
