"""Misbehaving run callables for the crash-tolerance tests.

These must live in an importable module (not a test body) so the process
pool can pickle them.  One-shot behaviours coordinate through a flag file
named by the ``REPRO_TEST_FLAG`` environment variable, which forked
workers inherit from the test process.
"""

import os
import time

from repro.core.simulation import run_simulation


def _flag() -> str:
    return os.environ["REPRO_TEST_FLAG"]


def _trip_flag() -> bool:
    """Return True the first time only (then the flag file exists)."""
    if os.path.exists(_flag()):
        return False
    open(_flag(), "w").close()
    return True


def crash_once_runner(config):
    """Kill the whole worker process on the first call.  Pool mode only —
    in-process this would take the test runner down with it."""
    if _trip_flag():
        os._exit(1)
    return run_simulation(config)


def raise_once_runner(config):
    """Fail with an ordinary exception on the first call."""
    if _trip_flag():
        raise RuntimeError("transient failure")
    return run_simulation(config)


def always_raise_runner(config):
    raise RuntimeError("permanent failure")


def fail_odd_seed_runner(config):
    if config.seed % 2:
        raise RuntimeError(f"seed {config.seed} is cursed")
    return run_simulation(config)


def slow_runner(config):
    time.sleep(60.0)
    return run_simulation(config)
