"""Unit tests for the DES kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(3.5)
        log.append(env.now)
        yield env.timeout(1.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [3.5, 5.0]


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=25)
    assert env.now == 25


def test_run_until_past_raises():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_process_return_value():
    env = Environment()

    def inner():
        yield env.timeout(2)
        return 42

    def outer(results):
        value = yield env.process(inner())
        results.append((env.now, value))

    results = []
    env.process(outer(results))
    env.run()
    assert results == [(2, 42)]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(7)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(7, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    gate.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_surfaces_from_run():
    env = Environment()

    def crasher():
        yield env.timeout(1)
        raise ValueError("crash")

    env.process(crasher())
    with pytest.raises(ValueError, match="crash"):
        env.run()


def test_defused_failure_does_not_crash_run():
    env = Environment()
    gate = env.event()
    gate.fail(RuntimeError("ignored"))
    gate.defuse()
    env.run()  # must not raise


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    gate = env.event()
    gate.succeed("early")
    log = []

    def late_waiter():
        yield env.timeout(5)
        value = yield gate
        log.append((env.now, value))

    env.process(late_waiter())
    env.run()
    assert log == [(5, "early")]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 123

    proc = env.process(bad())
    with pytest.raises(SimulationError):
        env.run()
    assert proc.triggered and not proc.ok


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc():
        slow = env.timeout(10, value="slow")
        fast = env.timeout(3, value="fast")
        fired = yield AnyOf(env, [slow, fast])
        log.append((env.now, fired[fast]))
        assert slow not in fired

    env.process(proc())
    env.run()
    assert log == [(3, "fast")]


def test_all_of_waits_for_every_event():
    env = Environment()
    log = []

    def proc():
        a = env.timeout(2, value="a")
        b = env.timeout(9, value="b")
        fired = yield AllOf(env, [a, b])
        log.append((env.now, fired[a], fired[b]))

    env.process(proc())
    env.run()
    assert log == [(9, "a", "b")]


def test_any_of_with_pre_fired_event():
    env = Environment()
    done = env.event()
    done.succeed("pre")
    log = []

    def proc():
        yield env.timeout(1)
        fired = yield env.any_of([done, env.timeout(100)])
        log.append((env.now, fired[done]))

    env.process(proc())
    env.run(until=50)
    assert log == [(1, "pre")]


def test_empty_any_of_fires_immediately():
    env = Environment()
    log = []

    def proc():
        fired = yield env.any_of([])
        log.append(fired)

    env.process(proc())
    env.run()
    assert log == [{}]


def test_interrupt_wakes_process_with_cause():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(target):
        yield env.timeout(4)
        target.interrupt("wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [(4, "wake up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def maker(tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in range(6):
        env.process(maker(tag))
    env.run()
    assert order == list(range(6))


def test_peek_and_step():
    env = Environment()
    env.process(iter_timeouts(env))
    assert env.peek() == 0  # process bootstrap event
    env.step()
    assert env.peek() == 2.0
    env.step()
    assert env.now == 2.0


def iter_timeouts(env):
    yield env.timeout(2.0)
    yield env.timeout(3.0)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_nested_processes_compose():
    env = Environment()

    def leaf(n):
        yield env.timeout(n)
        return n * 2

    def mid():
        a = yield env.process(leaf(1))
        b = yield env.process(leaf(2))
        return a + b

    def root(out):
        out.append((yield env.process(mid())))

    out = []
    env.process(root(out))
    env.run()
    assert out == [6]
    assert env.now == 3
