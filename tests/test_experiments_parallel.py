"""Tests for the parallel execution layer, result cache and profiling.

The headline guarantees under test:

* ``jobs > 1`` produces results **identical field-by-field** to the serial
  runner (every run is hermetic via ``RandomStreams(config.seed)``);
* a repeated sweep against the same cache executes **zero simulations**
  (checked with the process-wide run counter) and returns the same table;
* every run carries a :class:`~repro.sim.profile.RunProfile` with
  wall-clock, events processed and per-subsystem counters.
"""

import dataclasses

import pytest

from repro.core.config import CachingScheme, SimulationConfig
from repro.core.metrics import Results
from repro.core.simulation import run_simulation, simulations_run
from repro.experiments import (
    ResultCache,
    RunSpec,
    SweepTable,
    execute_runs,
    format_profile_report,
    resolve_jobs,
    run_replications,
    run_sweep,
)
from repro.experiments.cache import canonical_config, config_key

SCHEMES = [CachingScheme.LC, CachingScheme.GC]


def tiny_config(**overrides) -> SimulationConfig:
    settings = dict(
        n_clients=4,
        n_data=100,
        access_range=10,
        cache_size=5,
        measure_requests=3,
        warmup_min_time=0.0,
        warmup_max_time=30.0,
        ndp_enabled=False,
        seed=11,
    )
    settings.update(overrides)
    return SimulationConfig(**settings)


def tiny_sweep(jobs=1, cache=None, progress=None) -> SweepTable:
    return run_sweep(
        "FigP",
        "cache_size",
        [4, 6],
        lambda v: tiny_config(cache_size=v),
        schemes=SCHEMES,
        jobs=jobs,
        cache=cache,
        progress=progress,
    )


def assert_results_identical(a: Results, b: Results) -> None:
    """Field-by-field equality, excluding the timing-only profile."""
    for field in dataclasses.fields(Results):
        if field.name == "profile":
            continue
        assert getattr(a, field.name) == getattr(b, field.name), field.name


# -- parallel == serial -------------------------------------------------------


def test_parallel_sweep_identical_to_serial():
    serial = tiny_sweep(jobs=1)
    parallel = tiny_sweep(jobs=4)
    assert serial.values == parallel.values
    assert set(serial.rows) == set(parallel.rows)
    for scheme in serial.rows:
        for a, b in zip(serial.rows[scheme], parallel.rows[scheme]):
            assert a == b  # dataclass equality (profile excluded)
            assert_results_identical(a, b)


def test_parallel_replications_identical_to_serial():
    config = tiny_config()
    serial = run_replications(config, replications=2, schemes=SCHEMES, jobs=1)
    parallel = run_replications(config, replications=2, schemes=SCHEMES, jobs=2)
    for scheme in ("LC", "GC"):
        for a, b in zip(serial[scheme].runs, parallel[scheme].runs):
            assert_results_identical(a, b)
        assert serial[scheme].metrics == parallel[scheme].metrics


def test_execute_runs_preserves_spec_order():
    specs = [
        RunSpec(config=tiny_config(seed=seed), label=f"seed={seed}")
        for seed in (3, 1, 2)
    ]
    results = execute_runs(specs, jobs=2)
    reference = [run_simulation(spec.config) for spec in specs]
    for got, expected in zip(results, reference):
        assert_results_identical(got, expected)


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) == resolve_jobs(None)
    with pytest.raises(ValueError):
        resolve_jobs(-1)


# -- result cache -------------------------------------------------------------


def test_cached_sweep_executes_zero_simulations(tmp_path):
    cache = ResultCache(tmp_path)
    before = simulations_run()
    first = tiny_sweep(jobs=1, cache=cache)
    assert simulations_run() - before == 4  # 2 values x 2 schemes
    assert cache.misses == 4 and cache.stores == 4 and cache.hits == 0
    assert len(cache) == 4

    rerun_cache = ResultCache(tmp_path)  # fresh instance, same directory
    before = simulations_run()
    labels = []
    second = tiny_sweep(jobs=1, cache=rerun_cache, progress=labels.append)
    assert simulations_run() == before  # zero simulations executed
    assert rerun_cache.hits == 4 and rerun_cache.misses == 0
    assert all(label.endswith("[cached]") for label in labels)
    for scheme in first.rows:
        for a, b in zip(first.rows[scheme], second.rows[scheme]):
            assert_results_identical(a, b)
            assert b.profile is not None  # original run's profile rides along


def test_cache_only_simulates_changed_points(tmp_path):
    cache = ResultCache(tmp_path)
    tiny_sweep(jobs=1, cache=cache)
    before = simulations_run()
    widened = run_sweep(
        "FigP",
        "cache_size",
        [4, 6, 8],  # one new sweep point
        lambda v: tiny_config(cache_size=v),
        schemes=SCHEMES,
        jobs=1,
        cache=cache,
    )
    assert simulations_run() - before == 2  # only cache_size=8, both schemes
    assert len(widened.rows["GC"]) == 3


def test_cache_key_is_stable_and_sensitive():
    config = tiny_config()
    assert config_key(config) == config_key(tiny_config())
    assert config_key(config) != config_key(tiny_config(seed=12))
    assert config_key(config) != config_key(
        tiny_config(scheme=CachingScheme.CC)
    )
    assert config_key(config, "v1") != config_key(config, "v2")
    # The canonical form is plain JSON with the enum flattened to its value.
    assert '"scheme": "GC"' in canonical_config(config)


def test_cache_version_mismatch_is_a_miss(tmp_path):
    config = tiny_config()
    old = ResultCache(tmp_path, code_version="old-code")
    old.put(config, run_simulation(config))
    new = ResultCache(tmp_path, code_version="new-code")
    assert new.get(config) is None
    assert new.misses == 1


@pytest.mark.parametrize("garbage", [b"not a pickle", b"garbage\n", b""])
def test_cache_corrupt_entry_is_a_miss(tmp_path, garbage):
    config = tiny_config()
    cache = ResultCache(tmp_path)
    cache.path_for(config).write_bytes(garbage)
    assert cache.get(config) is None
    assert cache.misses == 1
    # A clean store repairs the entry.
    cache.put(config, run_simulation(config))
    assert cache.get(config) is not None


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(tiny_config(), run_simulation(tiny_config()))
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


# -- profiling ----------------------------------------------------------------


def test_run_profile_attached_and_excluded_from_equality():
    first = run_simulation(tiny_config())
    second = run_simulation(tiny_config())
    assert first == second  # timing differs, outcome identical
    profile = first.profile
    assert profile is not None
    assert profile.wall_time > 0
    assert profile.events > 0
    assert profile.events_per_sec > 0
    assert profile.counters["snapshot_refreshes"] > 0
    assert profile.counters["snapshot_rebuilds"] == 0  # incremental fast path
    assert profile.counters["ndp_rounds"] == 0  # ndp disabled in tiny_config
    flat = profile.as_dict()
    assert flat["events"] == profile.events
    assert "counter_snapshot_refreshes" in flat


def test_run_profile_counts_network_traffic():
    result = run_simulation(tiny_config())
    counters = result.profile.counters
    # P2P traffic totals from the cooperative (GC) scheme ...
    assert counters["p2p_broadcasts"] > 0
    assert counters["p2p_unicasts"] >= 0
    assert counters["p2p_failed_unicasts"] >= 0
    # ... and the MSS channel's request counts and FCFS queue-wait totals.
    assert counters["server_uplink_requests"] > 0
    assert counters["server_downlink_requests"] > 0
    assert counters["server_uplink_wait"] >= 0.0
    assert counters["server_downlink_wait"] >= 0.0
    # Fault counters only exist when an injector was built.
    assert "fault_p2p_drops" not in counters


def test_run_profile_counts_ndp_rounds():
    result = run_simulation(tiny_config(ndp_enabled=True, warmup_max_time=10.0))
    assert result.profile.counters["ndp_rounds"] > 0
    assert result.profile.counters["beacons_sent"] > 0


def test_format_profile_report_lists_every_run():
    table = tiny_sweep(jobs=1)
    report = format_profile_report(table)
    assert "FigP: per-run profile" in report
    assert report.count("cache_size=") == 4
    assert "total: 4 runs" in report
    assert "ev/s" in report


# -- SweepTable guards --------------------------------------------------------


def test_sweep_table_unknown_scheme_message():
    table = tiny_sweep(jobs=1)
    with pytest.raises(KeyError, match="scheme 'CC' was not swept in FigP"):
        table.result("CC", 4)
    with pytest.raises(KeyError, match="available schemes"):
        table.series("CC", "gch_ratio")


def test_sweep_table_unknown_value_message():
    table = tiny_sweep(jobs=1)
    with pytest.raises(ValueError, match="cache_size=99 was not swept in FigP"):
        table.result("GC", 99)
