"""Tests for the neighbor discovery protocol."""

import numpy as np
import pytest

from repro.mobility import (
    MobilityField,
    Rectangle,
    RandomWaypointTrajectory,
    StationaryTrajectory,
)
from repro.net import NeighborDiscovery, P2PNetwork, PowerLedger
from repro.sim import Environment


def make(points, tran_range=50.0, **ndp_kwargs):
    env = Environment()
    field = MobilityField([StationaryTrajectory(p) for p in points])
    ledger = PowerLedger(len(points))
    net = P2PNetwork(env, field, 2_000_000.0, tran_range, ledger)
    ndp = NeighborDiscovery(env, net, **ndp_kwargs)
    return env, net, ndp, ledger


TRIANGLE = [(0.0, 0.0), (30.0, 0.0), (500.0, 0.0)]


def test_beacons_populate_neighbor_tables():
    env, net, ndp, _ = make(TRIANGLE)
    env.run(until=2.0)
    assert ndp.hears(0, 1)
    assert ndp.hears(1, 0)
    assert not ndp.hears(0, 2)
    assert ndp.live_neighbors(0).tolist() == [1]
    assert ndp.live_neighbors(2).tolist() == []


def test_hears_self_always():
    env, net, ndp, _ = make(TRIANGLE)
    assert ndp.hears(0, 0)


def test_no_beacons_before_first_interval():
    env, net, ndp, _ = make(TRIANGLE)
    env.run(until=0.5)
    assert not ndp.hears(0, 1)


def test_link_expires_after_miss_limit():
    env, net, ndp, _ = make(TRIANGLE, beacon_interval=1.0, miss_limit=3)
    env.run(until=2.0)
    assert ndp.hears(0, 1)
    net.set_connected(1, False)
    env.run(until=4.5)  # last heard at t=2; horizon is 3 s
    assert ndp.hears(0, 1)
    env.run(until=5.5)
    assert not ndp.hears(0, 1)


def test_forget_clears_links_immediately():
    env, net, ndp, _ = make(TRIANGLE)
    env.run(until=2.0)
    ndp.forget(1)
    assert not ndp.hears(0, 1)
    assert not ndp.hears(1, 0)


def test_disconnected_hosts_do_not_listen():
    env, net, ndp, _ = make(TRIANGLE)
    net.set_connected(0, False)
    env.run(until=3.0)
    assert not ndp.hears(0, 1)  # 0 was offline, heard nothing
    assert not ndp.hears(1, 0)  # 0 sent nothing


def test_beacon_power_charged_to_beacon_purpose():
    env, net, ndp, ledger = make(TRIANGLE)
    env.run(until=3.0)
    assert ledger.total("beacon") > 0
    assert ledger.total("data") == 0.0
    # Host 2 is isolated: it pays only its own sends, never receptions.
    model = net.model
    expected_sender_only = 3 * model.bc_send(ndp.hello_size)
    assert ledger.host_total(2) == pytest.approx(expected_sender_only)


def test_beacon_power_can_be_disabled():
    env, net, ndp, ledger = make(TRIANGLE, charge_power=False)
    env.run(until=3.0)
    assert ledger.total() == 0.0
    assert ndp.hears(0, 1)


def test_ndp_validates_parameters():
    env = Environment()
    field = MobilityField([StationaryTrajectory((0, 0))])
    net = P2PNetwork(env, field, 1000.0, 10.0, PowerLedger(1))
    with pytest.raises(ValueError):
        NeighborDiscovery(env, net, beacon_interval=0)
    with pytest.raises(ValueError):
        NeighborDiscovery(env, net, miss_limit=0)


def test_ndp_tracks_moving_hosts():
    env = Environment()
    rng = np.random.default_rng(0)
    area = Rectangle(200.0, 200.0)
    field = MobilityField(
        [RandomWaypointTrajectory(rng, area, 5.0, 10.0) for _ in range(8)]
    )
    net = P2PNetwork(env, field, 2_000_000.0, 60.0, PowerLedger(8))
    ndp = NeighborDiscovery(env, net, miss_limit=1)
    env.run(until=30.0)
    # NDP's view must match true geometry at the last beacon time (t=30).
    truth = {
        i: set(field.neighbors_of(i, 30.0, 60.0).tolist()) for i in range(8)
    }
    for i in range(8):
        assert set(ndp.live_neighbors(i).tolist()) == truth[i]
