"""Fig. 2: effect of cache size on system performance.

Paper shapes this bench checks:
* access latency and server request ratio improve with cache size for all
  schemes (panel a, b);
* the cooperative schemes beat LC, and GroCoCa records the highest GCH
  ratio (panel c);
* GroCoCa consumes less power per GCH than COCA thanks to the higher GCH
  count amortising the signature scheme (panel d).
"""

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_cache_size


def test_fig2_cache_size(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_cache_size)
    record_table("fig2_cache_size", format_sweep_table(table, "effect of cache size"))
    record_profile("fig2_cache_size", table)

    smallest, largest = table.values[0], table.values[-1]
    for scheme in ("LC", "CC", "GC"):
        # Larger caches serve more requests locally / from peers.
        assert (
            table.result(scheme, largest).server_request_ratio
            < table.result(scheme, smallest).server_request_ratio
        )
        assert (
            table.result(scheme, largest).access_latency
            < table.result(scheme, smallest).access_latency
        )
    for value in table.values:
        lc, cc, gc = (table.result(s, value) for s in ("LC", "CC", "GC"))
        assert lc.global_hits == 0
        assert cc.global_hits > 0
        assert gc.global_hits > 0
        # Cooperation relieves the server at every cache size.
        assert cc.server_request_ratio < lc.server_request_ratio
        assert gc.server_request_ratio < lc.server_request_ratio
    # GroCoCa's group management wins on GCH where caches are scarce (the
    # paper's strongest regime), never loses materially overall, and pays
    # the least power per GCH across the board.
    assert (
        table.result("GC", smallest).gch_ratio
        > table.result("CC", smallest).gch_ratio
    )
    assert sum(table.series("GC", "gch_ratio")) > (
        sum(table.series("CC", "gch_ratio")) - 3.0
    )
    assert sum(table.series("GC", "power_per_gch")) < sum(
        table.series("CC", "power_per_gch")
    )
