"""Robustness sweep: wireless message loss (not a paper figure).

The paper's channel model is ideal; this bench injects seeded frame loss
(i.i.d. + Gilbert–Elliott bursts on the P2P medium, quarter-rate loss on
the MSS links) and checks that cooperative caching *degrades* rather than
*collapses*:

* global cache hits shrink as the radio gets lossier — monotonically up
  to a small tolerance for seed noise;
* the MSS fallback keeps access latency bounded (no stranded requests);
* the bounded recovery machinery visibly works: retries and fault-drop
  counters are non-zero at high loss.
"""

import math

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_link_loss

#: Adjacent sweep points may wobble this many GCH percentage points up
#: before we call the degradation non-monotonic (seed noise at small
#: scale profiles).
GCH_TOLERANCE = 2.0


def test_fig_link_loss(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_link_loss, attempts=2)
    record_table(
        "fig_link_loss",
        format_sweep_table(table, "effect of wireless message loss"),
    )
    record_profile("fig_link_loss", table)

    clean, worst = table.values[0], table.values[-1]
    for scheme in ("CC", "GC"):
        series = table.series(scheme, "gch_ratio")
        # Loss must cost global hits overall ...
        assert series[-1] < series[0]
        # ... and roughly monotonically along the way.
        for previous, current in zip(series, series[1:]):
            assert current <= previous + GCH_TOLERANCE
        # The MSS fallback keeps every request completing: latency stays
        # finite and within a small multiple of the fault-free baseline.
        for value in table.values:
            latency = table.result(scheme, value).access_latency
            assert math.isfinite(latency)
            assert latency < 10.0 * table.result(scheme, clean).access_latency

    # The recovery machinery visibly engaged at the lossy end.
    lossy = table.result("GC", worst)
    assert lossy.search_retries > 0
    assert lossy.mss_fallbacks > 0
    assert lossy.profile.counters["fault_p2p_drops"] > 0
    # The clean point built no injector (re-floods still answer *natural*
    # timeouts, so search_retries may be non-zero even without faults).
    assert "fault_p2p_drops" not in table.result("GC", clean).profile.counters
