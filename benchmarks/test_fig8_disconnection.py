"""Fig. 8: effect of the client disconnection probability.

Paper shapes this bench checks:
* LC's access latency *improves* with the disconnection probability (the
  downlink decongests as clients pause);
* the cooperative schemes lose GCH as peers disappear;
* GroCoCa pays reconnection overhead (signature recollection), so its
  signature power grows with the disconnection rate.
"""

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_disconnection


def test_fig8_disconnection(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_disconnection)
    record_table(
        "fig8_disconnection",
        format_sweep_table(table, "effect of disconnection probability"),
    )
    record_profile("fig8_disconnection", table)

    stable, flaky = table.values[0], table.values[-1]
    # The downlink decongests when clients go quiet.
    assert (
        table.result("LC", flaky).access_latency
        < table.result("LC", stable).access_latency
    )
    # Fewer reachable peers -> fewer global hits.
    for scheme in ("CC", "GC"):
        assert (
            table.result(scheme, flaky).gch_ratio
            < table.result(scheme, stable).gch_ratio
        )
    # GroCoCa's disconnection handling (membership sync + signature
    # recollection) is amortised over ever fewer global hits: the power per
    # GCH climbs with the disconnection rate (the paper's panel d).
    assert (
        table.result("GC", flaky).power_per_gch
        > table.result("GC", stable).power_per_gch
    )
