"""Table I: the P2P power consumption measurement model.

Regenerates the paper's Table I rows (µW·s cost per transmission event as a
function of message size) from :class:`repro.net.power.PowerModel` and
benchmarks the model evaluation itself.
"""

from conftest import run_once

from repro.net.power import PowerModel

ROWS = [
    ("ptp send       (m = S)", "ptp_send"),
    ("ptp recv       (m = D)", "ptp_recv"),
    ("ptp discard  (S_R&D_R)", "ptp_discard_sd"),
    ("ptp discard (S_R only)", "ptp_discard_s"),
    ("ptp discard (D_R only)", "ptp_discard_d"),
    ("bc send        (m = S)", "bc_send"),
    ("bc recv      (m in S_R)", "bc_recv"),
]

SIZES = [48, 64, 512, 3104]


def render_table1(model: PowerModel) -> str:
    lines = ["=== Table I: power consumption model (uW.s) ==="]
    header = f"  {'event':>24} |" + "".join(f"{f'{s} B':>10}" for s in SIZES)
    lines.append(header)
    lines.append("  " + "-" * (26 + 10 * len(SIZES)))
    for label, method in ROWS:
        costs = [getattr(model, method)(size) for size in SIZES]
        lines.append(
            f"  {label:>24} |" + "".join(f"{cost:10.1f}" for cost in costs)
        )
    p = model.parameters
    lines.append("")
    lines.append(
        "  coefficients: ptp v_send=%.1f f_send=%.0f | v_recv=%.1f f_recv=%.0f"
        % (p.ptp_send_v, p.ptp_send_f, p.ptp_recv_v, p.ptp_recv_f)
    )
    lines.append(
        "  discards: f_sd=%.0f f_s=%.0f f_d=%.0f | bc f_send=%.0f f_recv=%.0f"
        % (p.ptp_disc_sd_f, p.ptp_disc_s_f, p.ptp_disc_d_f, p.bc_send_f, p.bc_recv_f)
    )
    return "\n".join(lines)


def test_table1_power_model(benchmark, record_table):
    model = PowerModel()

    def evaluate():
        total = 0.0
        for _ in range(1000):
            for _, method in ROWS:
                total += getattr(model, method)(3104)
        return total

    run_once(benchmark, evaluate)
    record_table("table1_power_model", render_table1(model))
    # The paper's surviving Table I constants.
    assert model.ptp_discard_sd(100) == 70.0
    assert model.ptp_discard_s(100) == 24.0
    assert model.ptp_discard_d(100) == 56.0
