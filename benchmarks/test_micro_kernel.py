"""Micro-benchmark of the DES kernel: raw event throughput.

The whole evaluation stands on the kernel, so its throughput bounds every
experiment's wall-clock time.  This bench pushes a ping-pong of processes
and timeouts through the scheduler and reports events per second.
"""

from conftest import run_once

from repro.sim import Environment, Resource


def test_micro_kernel_event_throughput(benchmark, record_table):
    events = 200_000

    def churn():
        env = Environment()

        def ticker():
            for _ in range(events):
                yield env.timeout(1.0)

        env.process(ticker())
        env.run()
        return env.now

    now = run_once(benchmark, churn)
    assert now == events
    seconds = benchmark.stats.stats.mean
    record_table(
        "micro_kernel",
        "\n".join(
            [
                "=== Micro: DES kernel throughput ===",
                f"  {events} timeout events in {seconds:.3f} s"
                f"  ->  {events / seconds:,.0f} events/s",
            ]
        ),
    )


def test_micro_kernel_resource_contention(benchmark, record_table):
    def contended():
        env = Environment()
        resource = Resource(env, capacity=1)

        def user():
            for _ in range(500):
                yield from resource.acquire(0.001)

        for _ in range(50):
            env.process(user())
        env.run()
        return env.now

    run_once(benchmark, contended)
    seconds = benchmark.stats.stats.mean
    record_table(
        "micro_resource",
        "\n".join(
            [
                "=== Micro: FCFS resource contention (50 users x 500 holds) ===",
                f"  25,000 grants in {seconds:.3f} s",
            ]
        ),
    )
