"""Table II: the simulation parameter defaults and their sweep ranges.

Dumps the active configuration (paper defaults plus the scale profile in
effect) and benchmarks simulation construction, which exercises the whole
wiring path: mobility build, network, database, TCG manager, clients.
"""

import dataclasses

from conftest import run_once

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.experiments.runner import active_profile, base_config

SWEEP_RANGES = {
    "n_clients": "50 - 400 (Fig. 7)",
    "cache_size": "50 - 250 (Fig. 2)",
    "access_range": "500 - 10,000 (Fig. 4)",
    "theta": "0 - 1 (Fig. 3)",
    "group_size": "1 - 20 (Fig. 5)",
    "data_update_rate": "0 - 10 /s (Fig. 6)",
    "p_disc": "0 - 0.3 (Fig. 8)",
}


def render_table2(config: SimulationConfig) -> str:
    lines = [
        "=== Table II: simulation parameters ===",
        f"  (scale profile: {active_profile()})",
        f"  {'parameter':>24} | {'value':>14} | range",
        "  " + "-" * 64,
    ]
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if hasattr(value, "value"):
            value = value.value
        sweep = SWEEP_RANGES.get(field.name, "-")
        lines.append(f"  {field.name:>24} | {str(value):>14} | {sweep}")
    return "\n".join(lines)


def test_table2_parameters(benchmark, record_table):
    config = base_config()
    simulation = run_once(benchmark, lambda: Simulation(config))
    record_table("table2_parameters", render_table2(config))
    assert len(simulation.clients) == config.n_clients
    # Paper defaults that survive the OCR must hold in the full profile.
    paper = SimulationConfig()
    assert paper.data_size == 3072
    assert paper.bw_p2p == 2_000_000.0
    assert paper.replace_delay == 2
    assert (paper.v_min, paper.v_max) == (1.0, 5.0)
