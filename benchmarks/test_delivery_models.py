"""Extension E1: the Section I delivery-model comparison.

Regenerates the argument the paper builds COCA on: under one channel
budget, push-based delivery pays cycle-bound access latency and doze
energy but is audience-independent, while pull is fast until the downlink
saturates.  The series prints latency/power for pull, hybrid and push at a
growing population; the crossover is the paper's motivation for pull +
peer-to-peer cooperation.
"""

from conftest import run_once

from repro.delivery import compare_delivery_models

POPULATIONS = (10, 40, 160)


def test_delivery_model_comparison(benchmark, record_table):
    def sweep():
        return {
            n: compare_delivery_models(
                n_clients=n,
                n_data=2000,
                access_range=200,
                hot_items=200,
                requests_per_client=10,
                seed=7,
            )
            for n in POPULATIONS
        }

    table = run_once(benchmark, sweep)

    lines = ["=== E1: data delivery models (Section I) ==="]
    lines.append(
        f"  {'clients':>8} | {'pull lat(s)':>12} {'hybrid lat(s)':>14}"
        f" {'push lat(s)':>12} | {'pull uW.s/req':>14} {'push uW.s/req':>14}"
    )
    for n, outcomes in table.items():
        lines.append(
            f"  {n:>8} | {outcomes['pull'].access_latency:>12.3f}"
            f" {outcomes['hybrid'].access_latency:>14.3f}"
            f" {outcomes['push'].access_latency:>12.3f}"
            f" | {outcomes['pull'].power_per_request:>14,.0f}"
            f" {outcomes['push'].power_per_request:>14,.0f}"
        )
    record_table("e1_delivery_models", "\n".join(lines))

    small, large = POPULATIONS[0], POPULATIONS[-1]
    # Push is audience-independent (latency pinned to the cycle)...
    assert table[large]["push"].access_latency == (
        __import__("pytest").approx(table[small]["push"].access_latency, rel=0.2)
    )
    # ... and always pays more energy per request than an unsaturated pull.
    assert (
        table[small]["push"].power_per_request
        > table[small]["pull"].power_per_request
    )
    # Pull degrades with the audience; at a small audience it wins latency.
    assert (
        table[large]["pull"].access_latency
        > table[small]["pull"].access_latency
    )
    assert (
        table[small]["pull"].access_latency
        < table[small]["push"].access_latency
    )
    # Hybrid sits between pull and push on latency at every population.
    for n in POPULATIONS:
        assert (
            table[n]["hybrid"].access_latency
            < table[n]["push"].access_latency
        )
