"""Ablations of GroCoCa's design choices (DESIGN.md A1-A4).

Each ablation runs GroCoCa with one mechanism disabled and compares it to
the full scheme under the same seed, quantifying what each of Section IV's
components buys:

* A1 — cooperative cache admission control off,
* A2 — cooperative cache replacement off (plain LRU victim),
* A3 — signature compression off (raw Bloom filters on the air),
* A4 — signature filtering off (every local miss searches the peers).
"""

from conftest import run_once

from repro.core.config import CachingScheme
from repro.core.simulation import run_simulation
from repro.experiments import base_config, format_results_row


def _compare(benchmark, record_table, name, title, **disabled):
    config = base_config(scheme=CachingScheme.GC)

    def runs():
        full = run_simulation(config)
        ablated = run_simulation(config.replace(**disabled))
        return full, ablated

    full, ablated = run_once(benchmark, runs)
    text = "\n".join(
        [
            f"=== Ablation {name}: {title} ===",
            f"  full GroCoCa : {format_results_row(full)}",
            f"  ablated      : {format_results_row(ablated)}",
            f"  searches full/ablated: {full.peer_searches}/{ablated.peer_searches}"
            f"  bypassed: {full.bypassed_searches}/{ablated.bypassed_searches}",
            f"  signature power full/ablated: "
            f"{full.power_signature:.0f}/{ablated.power_signature:.0f} uW.s",
        ]
    )
    record_table(f"ablation_{name}", text)
    return full, ablated


def test_ablation_a1_admission_control(benchmark, record_table):
    full, ablated = _compare(
        benchmark,
        record_table,
        "a1_admission",
        "cooperative cache admission control",
        admission_control=False,
    )
    # Without admission control TCG members duplicate each other's items,
    # shrinking the aggregate cache: the GCH ratio must not improve.
    assert ablated.gch_ratio <= full.gch_ratio + 1.0


def test_ablation_a2_cooperative_replacement(benchmark, record_table):
    full, ablated = _compare(
        benchmark,
        record_table,
        "a2_replacement",
        "cooperative cache replacement",
        cooperative_replacement=False,
    )
    # Replica-first eviction is the second-order mechanism: admission
    # control already suppresses most intra-TCG duplication, so at this
    # scale the replacement protocol moves the ratios only within noise.
    # Guard against regressions in either direction, not a fixed winner.
    assert abs(ablated.gch_ratio - full.gch_ratio) < 3.0
    assert abs(ablated.server_request_ratio - full.server_request_ratio) < 3.0


def test_ablation_a3_signature_compression(benchmark, record_table):
    from repro.core.simulation import Simulation

    config = base_config(scheme=CachingScheme.GC)

    def runs():
        sims = (
            Simulation(config),
            Simulation(config.replace(signature_compression=False)),
        )
        return tuple((sim, sim.run()) for sim in sims)

    (full_sim, full), (ablated_sim, ablated) = run_once(benchmark, runs)

    def signature_traffic(sim):
        sent = sum(c.signatures.signatures_sent_compressed for c in sim.clients)
        raw = sum(c.signatures.signatures_sent_raw for c in sim.clients)
        total_bytes = sum(c.signatures.signature_bytes_sent for c in sim.clients)
        return sent, raw, total_bytes

    full_compressed, full_raw, full_bytes = signature_traffic(full_sim)
    abl_compressed, abl_raw, abl_bytes = signature_traffic(ablated_sim)
    full_count = full_compressed + full_raw
    abl_count = abl_compressed + abl_raw
    text = "\n".join(
        [
            "=== Ablation a3: VLFL signature compression ===",
            f"  full GroCoCa : {format_results_row(full)}",
            f"  ablated      : {format_results_row(ablated)}",
            f"  signatures sent (compressed/raw): full {full_compressed}/"
            f"{full_raw}, ablated {abl_compressed}/{abl_raw}",
            f"  mean bytes per signature: full "
            f"{full_bytes / max(full_count, 1):.0f}, ablated "
            f"{abl_bytes / max(abl_count, 1):.0f}",
        ]
    )
    record_table("ablation_a3_compression", text)
    # With compression disabled every signature goes out raw at sigma/8.
    assert abl_compressed == 0
    assert abl_bytes / max(abl_count, 1) == config.signature_bits // 8
    # Compression must shrink the mean signature on the air.
    assert full_compressed > 0
    assert full_bytes / max(full_count, 1) < abl_bytes / max(abl_count, 1)


def test_ablation_a4_signature_filtering(benchmark, record_table):
    full, ablated = _compare(
        benchmark,
        record_table,
        "a4_filtering",
        "cache signature search filtering",
        signature_filtering=False,
    )
    # Without the filter nothing is bypassed and far more searches happen.
    assert ablated.bypassed_searches == 0
    assert ablated.peer_searches > full.peer_searches
