"""Fig. 5: effect of the motion group size.

Paper shapes this bench checks:
* group size 1 (individual random waypoint) is the cooperative schemes'
  worst case on the GCH ratio;
* the GCH and server request ratios improve with group size (more nearby
  peers with similar data affinity);
* larger groups raise the power per GCH (more overheard traffic in the
  group's vicinity).
"""

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_group_size


def test_fig5_group_size(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_group_size)
    record_table("fig5_group_size", format_sweep_table(table, "effect of group size"))
    record_profile("fig5_group_size", table)

    loner, largest = table.values[0], table.values[-1]
    for scheme in ("CC", "GC"):
        solo = table.result(scheme, loner)
        grouped = table.result(scheme, largest)
        # Solo mobility is the worst case for cooperation.
        assert solo.gch_ratio == min(table.series(scheme, "gch_ratio"))
        assert grouped.gch_ratio > solo.gch_ratio
        assert grouped.server_request_ratio < solo.server_request_ratio
    # LC is indifferent to grouping (no cooperation to gain from it).
    lc_series = table.series("LC", "gch_ratio")
    assert all(v == 0 for v in lc_series)
