"""Fig. 7: effect of the number of mobile hosts (system scalability).

Paper shapes this bench checks:
* LC's access latency blows up once the downlink saturates, while the
  cooperative schemes keep the system scalable;
* the power per GCH grows with density (more overheard traffic).
"""

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_n_clients


def test_fig7_scalability(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_n_clients)
    record_table(
        "fig7_scalability", format_sweep_table(table, "effect of number of MHs")
    )
    record_profile("fig7_scalability", table)

    sparse, dense = table.values[0], table.values[-1]
    lc_sparse = table.result("LC", sparse)
    lc_dense = table.result("LC", dense)
    # The LC latency blow-up past the downlink saturation knee.
    assert lc_dense.access_latency > 3.0 * lc_sparse.access_latency
    # Cooperation keeps the system ahead of LC at every density; at the
    # dense end the gap is substantial (the paper's scalability claim).
    for scheme in ("CC", "GC"):
        for value in table.values:
            assert (
                table.result(scheme, value).access_latency
                < table.result("LC", value).access_latency
            )
        assert (
            table.result(scheme, dense).server_request_ratio
            < lc_dense.server_request_ratio
        )
    assert (
        min(
            table.result("CC", dense).access_latency,
            table.result("GC", dense).access_latency,
        )
        < 0.8 * lc_dense.access_latency
    )
    # Denser systems overhear more: power per GCH grows for CC.
    assert (
        table.result("CC", dense).power_per_gch
        > table.result("CC", sparse).power_per_gch
    )
