"""Fig. 4: effect of the access range.

Paper shapes this bench checks:
* all schemes degrade as the access range grows (more distinct items,
  lower LCH and GCH ratios, more server requests);
* the cooperative schemes stay ahead of LC, with GroCoCa the most
  effective as the range grows.
"""

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_access_range


def test_fig4_access_range(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_access_range)
    record_table(
        "fig4_access_range", format_sweep_table(table, "effect of access range")
    )
    record_profile("fig4_access_range", table)

    narrow, wide = table.values[0], table.values[-1]
    for scheme in ("LC", "CC", "GC"):
        assert (
            table.result(scheme, wide).server_request_ratio
            > table.result(scheme, narrow).server_request_ratio
        )
        assert (
            table.result(scheme, wide).lch_ratio
            < table.result(scheme, narrow).lch_ratio
        )
    for scheme in ("CC", "GC"):
        assert (
            table.result(scheme, wide).gch_ratio
            < table.result(scheme, narrow).gch_ratio
        )
    # Cooperation still beats LC on the server ratio at every range, and GC
    # leads CC where the working sets are shareable (the narrow end).
    for value in table.values:
        assert (
            table.result("CC", value).server_request_ratio
            < table.result("LC", value).server_request_ratio
        )
        assert (
            table.result("GC", value).server_request_ratio
            < table.result("LC", value).server_request_ratio
        )
    assert (
        table.result("GC", narrow).gch_ratio > table.result("CC", narrow).gch_ratio
    )
