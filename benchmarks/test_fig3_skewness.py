"""Fig. 3: effect of the access-pattern skewness (Zipf θ).

Paper shapes this bench checks:
* access latency and server request ratio improve as θ grows (skewed
  accesses hit the local cache more);
* the GCH ratio first rises with θ (hot ranges concentrate in the TCG)
  and eventually sags as the local cache absorbs the demand.
"""

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_skewness


def test_fig3_skewness(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_skewness)
    record_table("fig3_skewness", format_sweep_table(table, "effect of skewness"))
    record_profile("fig3_skewness", table)

    uniform, most_skewed = table.values[0], table.values[-1]
    for scheme in ("LC", "CC", "GC"):
        assert (
            table.result(scheme, most_skewed).server_request_ratio
            < table.result(scheme, uniform).server_request_ratio
        )
        assert (
            table.result(scheme, most_skewed).lch_ratio
            > table.result(scheme, uniform).lch_ratio
        )
        assert (
            table.result(scheme, most_skewed).access_latency
            < table.result(scheme, uniform).access_latency
        )
    # Cooperative schemes keep collecting global hits across the sweep.
    for value in table.values:
        assert table.result("CC", value).global_hits > 0
        assert table.result("GC", value).global_hits > 0
