"""Ablation A5: what makes a *tightly-coupled* group tight?

The paper's definition (Section IV-A/B) requires *both* geographic
vicinity (weighted average distance ≤ Δ) and operational vicinity (access
similarity ≥ δ).  This ablation runs GroCoCa with three group definitions:

* **both** — the paper's TCG (distance AND similarity),
* **distance-only** — proximity clustering like the related work the
  paper positions against (the similarity condition is void),
* **similarity-only** — data affinity without geography (Δ = ∞).

This is an *exploratory* ablation: the reproduction's measured outcome is
parameter-dependent and worth reporting honestly.  At the bench scale
(δ = 0.1, 60 clients) the looser definitions actually collect a few more
global hits — a wider membership widens the signature filter, and the
broadcast search then also reaps overlap hits from nearby non-members —
while the strict definition concentrates its hits almost entirely inside
the true motion group (the `tcg hits` column) and keeps the admission
control's trust assumptions sound.  The benchmark asserts only the robust
facts and records the full comparison for EXPERIMENTS.md.
"""

from conftest import run_once

from repro.core.config import CachingScheme
from repro.core.simulation import run_simulation
from repro.experiments import base_config, format_results_row

VARIANTS = [
    ("both (paper TCG)", {}),
    ("distance-only", {"similarity_threshold": 0.0}),
    ("similarity-only", {"distance_threshold": 1.0e9}),
]


def test_ablation_a5_tcg_definition(benchmark, record_table):
    config = base_config(scheme=CachingScheme.GC)

    def runs():
        return [
            (name, run_simulation(config.replace(**overrides)))
            for name, overrides in VARIANTS
        ]

    outcomes = run_once(benchmark, runs)
    lines = ["=== Ablation A5: TCG definition (distance AND/OR similarity) ==="]
    for name, result in outcomes:
        share = (
            100.0 * result.global_hits_tcg / result.global_hits
            if result.global_hits
            else 0.0
        )
        lines.append(
            f"  {name:>18}: {format_results_row(result)}  tcg-share={share:.0f}%"
        )
    record_table("ablation_a5_tcg_definition", "\n".join(lines))

    results = dict(outcomes)
    both = results["both (paper TCG)"]
    distance_only = results["distance-only"]
    similarity_only = results["similarity-only"]
    # Robust facts: every definition finds groups and earns global hits ...
    for result in (both, distance_only, similarity_only):
        assert result.global_hits > 0
        assert result.server_request_ratio < 75.0  # cooperation is working
    # ... and the variants land in the same performance neighbourhood: the
    # definitional differences are second-order next to cooperation itself.
    gch_values = [both.gch_ratio, distance_only.gch_ratio, similarity_only.gch_ratio]
    assert max(gch_values) - min(gch_values) < 10.0
    # The strict definition's hits come from genuine motion-group members.
    assert both.global_hits_tcg > 0.9 * both.global_hits
