"""Fig. 6: effect of the data item update rate.

Paper shapes this bench checks:
* all schemes degrade as the update rate grows (cached copies expire, so
  both LCH and GCH fall and the server serves more);
* the power per GCH rises with the update rate (the search machinery is
  amortised over fewer global hits).
"""

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_update_rate


def test_fig6_update_rate(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_update_rate)
    record_table(
        "fig6_update_rate", format_sweep_table(table, "effect of data update rate")
    )
    record_profile("fig6_update_rate", table)

    fresh, churny = table.values[0], table.values[-1]
    # Updates force validations and refreshes; without updates there are none.
    for scheme in ("LC", "CC", "GC"):
        assert table.result(scheme, fresh).validations == 0
        assert table.result(scheme, churny).validations > 0
        assert table.result(scheme, churny).validation_refreshes > 0
        # Expiring copies cannot *relieve* the server (0.5pp noise floor).
        assert (
            table.result(scheme, churny).server_request_ratio
            > table.result(scheme, fresh).server_request_ratio - 0.5
        )
    for scheme in ("CC", "GC"):
        # Churn erodes global hits and the power amortisation behind them.
        assert (
            table.result(scheme, churny).gch_ratio
            < table.result(scheme, fresh).gch_ratio + 0.5
        )
        assert (
            table.result(scheme, churny).power_per_gch
            > 0.9 * table.result(scheme, fresh).power_per_gch
        )
