"""Micro-benchmarks of the cache signature machinery (Section IV-D).

Verifies the analytic models of the paper against the implementation:
the Bloom false-positive formula and the VLFL expected compressed size,
plus raw throughput of signature construction and compression.
"""

import numpy as np
from conftest import run_once

from repro.signatures import SignatureScheme, find_optimal_r, vlfl_decode, vlfl_encode
from repro.signatures.vlfl import expected_compressed_bits, zero_probability


def test_micro_bloom_false_positive_model(benchmark, record_table):
    size_bits, k = 10_000, 2
    scheme = SignatureScheme(np.random.default_rng(0), size_bits, k)

    def build_and_probe():
        bloom = scheme.make_filter()
        bloom.add_all(range(100))
        hits = sum(bloom.might_contain(item) for item in range(50_000, 55_000))
        return hits / 5000

    observed = run_once(benchmark, build_and_probe)
    predicted = scheme.false_positive_probability(100)
    lines = [
        "=== Micro: Bloom filter false positives (sigma=10,000, k=2, 100 items) ===",
        f"  predicted: {predicted:.5f}",
        f"  observed : {observed:.5f}",
    ]
    record_table("micro_bloom", "\n".join(lines))
    assert abs(observed - predicted) < 0.005


def test_micro_vlfl_compression_ratio(benchmark, record_table):
    size_bits, k = 10_000, 2
    scheme = SignatureScheme(np.random.default_rng(1), size_bits, k)
    rows = []
    for cached in (25, 50, 100, 200, 400):
        bloom = scheme.make_filter()
        bloom.add_all(range(cached))
        run_cap = find_optimal_r(cached, size_bits, k)
        compressed = vlfl_encode(bloom.bits, run_cap)
        phi = zero_probability(cached, size_bits, k)
        predicted = expected_compressed_bits(size_bits, phi, run_cap) / 8
        rows.append(
            f"  eps={cached:4d}  R={run_cap:4d}  raw={size_bits // 8:5d} B"
            f"  compressed={compressed.size_bytes:5d} B"
            f"  predicted={predicted:7.0f} B"
            f"  ratio={compressed.size_bytes / (size_bits / 8):.3f}"
        )
        assert np.array_equal(vlfl_decode(compressed), bloom.bits)

    def roundtrip():
        bloom = scheme.make_filter()
        bloom.add_all(range(100))
        run_cap = find_optimal_r(100, size_bits, k)
        return vlfl_decode(vlfl_encode(bloom.bits, run_cap)).sum()

    run_once(benchmark, roundtrip)
    record_table(
        "micro_vlfl",
        "\n".join(["=== Micro: VLFL compression (sigma=10,000, k=2) ==="] + rows),
    )
