"""Robustness sweep: retrieve scoring policy × P2P fault rate (not a paper
figure).

The paper's retrieve protocol always pulls from the first replier.  This
bench runs GroCoCa under the failure-aware retrieve layer
(:mod:`repro.net.health`) across increasingly hostile radio conditions —
bursty P2P loss, quarter-rate MSS loss and a low-rate crash-stop process —
and checks that the adaptive machinery earns its keep:

* under heavy loss at least one adaptive policy beats the legacy
  ``arrival`` baseline on mean access latency (paired seeds, common
  random numbers);
* the machinery visibly engages at the lossy end: breakers trip and
  probe, and the health counters appear in the run profile;
* the ``arrival`` rows run the untouched legacy path — no health layer,
  no health counters.
"""

import math

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_peer_policy

ADAPTIVE = ("least-pending", "latency-aware", "power-aware", "epsilon-greedy")


def test_fig_peer_policy(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_peer_policy, attempts=2)
    record_table(
        "fig_peer_policy",
        format_sweep_table(table, "retrieve scoring policy x P2P fault rate"),
    )
    record_profile("fig_peer_policy", table)

    # Every run completed: latency finite for all policies at all points.
    for policy in table.rows:
        for value in table.values:
            assert math.isfinite(table.result(policy, value).access_latency)

    # ISSUE 7 acceptance: at heavy loss some adaptive policy beats the
    # legacy arrival baseline on mean access latency.
    for value in (v for v in table.values if v >= 0.2):
        arrival = table.result("arrival", value).access_latency
        best = min(
            table.result(policy, value).access_latency for policy in ADAPTIVE
        )
        assert best < arrival, (
            f"no adaptive policy beat arrival at p2p_loss={value}: "
            f"best {best:.4f}s vs arrival {arrival:.4f}s"
        )

    # The failure-aware machinery visibly engaged at the lossy end ...
    worst = table.values[-1]
    lossy = table.result("latency-aware", worst)
    assert lossy.profile.counters["health_breaker_trips"] > 0
    assert lossy.profile.counters["health_breaker_probes"] > 0
    # ... and the legacy baseline ran with no health layer at all.
    for value in table.values:
        counters = table.result("arrival", value).profile.counters
        assert not any(name.startswith("health_") for name in counters)
