"""Workload sweep: demand model × caching scheme (not a paper figure).

The paper evaluates one stationary Zipf demand process.  This bench runs
all three schemes under every generative engine in ``repro.workloads`` —
YCSB-style mixes, flash crowds, diurnal rate swings, popularity drift —
and checks the qualitative story survives the demand side changing:

* the ``stationary-zipf`` column is the legacy process bit-for-bit, so
  its numbers line up with Fig. 2's default point at this profile;
* cooperation keeps paying under every demand model: GC/CC beat LC on
  server request ratio across the board (paired seeds per column);
* the non-stationary engines visibly shift the operating point — the
  sweep is not six relabelled copies of the same column.
"""

import math

from conftest import run_sweep_once

from repro.experiments import format_sweep_table, sweep_workload


def test_fig_workload(benchmark, record_table, record_profile):
    table = run_sweep_once(benchmark, sweep_workload)
    record_table(
        "fig_workload",
        format_sweep_table(table, "workload engine x caching scheme"),
    )
    record_profile("fig_workload", table)

    # Every run completed with finite metrics.
    for scheme in table.rows:
        for key in table.values:
            assert math.isfinite(table.result(scheme, key).access_latency)

    # Cooperation helps under every demand model: fewer server requests
    # than the no-cooperation baseline (paired seeds per column).
    for key in table.values:
        lc = table.result("LC", key).server_request_ratio
        assert table.result("CC", key).server_request_ratio < lc
        assert table.result("GC", key).server_request_ratio < lc

    # The engines genuinely differ: the sweep spreads the GC operating
    # point instead of replaying one column six times.
    latencies = [table.result("GC", key).access_latency for key in table.values]
    assert max(latencies) > min(latencies)
