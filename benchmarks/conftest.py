"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, each writes its rendered series to
``results/<name>.txt`` (and stdout) so the numbers survive output capture;
EXPERIMENTS.md is compiled from those files.

Scale is controlled by ``REPRO_PROFILE`` (quick / bench / full, default
bench) — see :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Write a rendered table to results/<name>.txt and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text)
        print()
        print(text)

    return _record


def run_once(benchmark, fn):
    """Time one full sweep exactly once (simulations are deterministic)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
