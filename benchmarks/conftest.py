"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, each writes its rendered series to
``results/<name>.txt`` (and stdout) so the numbers survive output capture;
EXPERIMENTS.md is compiled from those files.

Scale is controlled by ``REPRO_PROFILE`` (quick / bench / full, default
bench) — see :mod:`repro.experiments.runner`.  ``REPRO_JOBS`` fans each
figure sweep out over that many worker processes (0, empty or unset =
serial; the CLI's ``--jobs 0`` = one per core is a different, explicit
contract) with results identical to the serial runner; the figure benches
additionally
record a per-run wall-clock / events-per-second profile to
``results/<name>.profile.txt`` so the perf trajectory of every future PR
is measured against these baselines (see ``tools/bench_profile.py``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.parallel import jobs_from_env

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Worker processes for the figure sweeps (REPRO_JOBS; 0/unset = serial).
SWEEP_JOBS = jobs_from_env()

#: Rounds for the micro benches (REPRO_BENCH_ROUNDS; deterministic sims
#: need >1 round only to measure machine noise, so the default stays 1 and
#: ``tools/bench_profile.py`` raises it to get a real stddev).
BENCH_ROUNDS = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "1") or "1"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Write a rendered table to results/<name>.txt and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text)
        print()
        print(text)

    return _record


@pytest.fixture()
def record_profile(results_dir):
    """Write a sweep's per-run profile to results/<name>.profile.txt."""

    def _record(name: str, table) -> None:
        from repro.experiments.tables import format_profile_report

        text = format_profile_report(table)
        (results_dir / f"{name}.profile.txt").write_text(text)
        print()
        print(text)

    return _record


def run_once(benchmark, fn):
    """Time a deterministic benchmark body ``BENCH_ROUNDS`` times.

    Simulations are deterministic, so rounds only measure machine noise:
    plain test runs keep one round, while ``tools/bench_profile.py`` sets
    ``REPRO_BENCH_ROUNDS>=5`` so the recorded mean carries a real stddev.
    """
    return benchmark.pedantic(fn, rounds=BENCH_ROUNDS, iterations=1)


def run_sweep_once(benchmark, sweep_fn, **sweep_kwargs):
    """Time one figure sweep with the suite-wide ``REPRO_JOBS`` fan-out."""
    sweep_kwargs.setdefault("jobs", SWEEP_JOBS)
    return run_once(benchmark, lambda: sweep_fn(**sweep_kwargs))
